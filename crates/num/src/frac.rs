//! Reduced `i128` rationals with exact ordering.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::gcd;
use crate::wide::cmp_prod;

/// A rational number `num / den` in lowest terms with `den > 0`.
///
/// `Frac` backs every decision made by the exact DDS algorithms (binary
/// search bounds, flow-network guesses, core thresholds). Arithmetic reduces
/// intermediates aggressively (cross-cancellation before multiplying) and
/// panics on `i128` overflow rather than silently wrapping; the search code
/// keeps magnitudes far below that limit (see `dds-core::exact`).
///
/// Ordering is exact: comparisons route through 256-bit products and never
/// round.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frac {
    num: i128,
    den: i128,
}

impl Frac {
    /// The value `0`.
    pub const ZERO: Frac = Frac { num: 0, den: 1 };
    /// The value `1`.
    pub const ONE: Frac = Frac { num: 1, den: 1 };

    /// Creates `num / den` in lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Frac denominator must be non-zero");
        let sign = if (num < 0) ^ (den < 0) { -1 } else { 1 };
        let n = num.unsigned_abs();
        let d = den.unsigned_abs();
        // gcd(0, d) = d > 0 here, so plain division is well defined; keep
        // the zero-numerator case canonical as 0/1.
        let (n, d) = if n == 0 {
            (0, 1)
        } else {
            let g = gcd(n, d);
            (n / g, d / g)
        };
        Frac {
            num: sign * i128::try_from(n).expect("reduced numerator fits i128"),
            den: i128::try_from(d).expect("reduced denominator fits i128"),
        }
    }

    /// Numerator (sign-carrying).
    #[must_use]
    pub fn num(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    #[must_use]
    pub fn den(self) -> i128 {
        self.den
    }

    /// `true` iff the value is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` iff the value is strictly negative.
    #[must_use]
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Largest integer `≤ self`.
    #[must_use]
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `≥ self`.
    #[must_use]
    pub fn ceil(self) -> i128 {
        -(-self).floor()
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    #[must_use]
    pub fn recip(self) -> Self {
        assert!(self.num != 0, "cannot invert zero");
        Frac::new(self.den, self.num)
    }

    /// `self / 2` (cheap special case used by bisection).
    #[must_use]
    pub fn half(self) -> Self {
        if self.num % 2 == 0 {
            Frac {
                num: self.num / 2,
                den: self.den,
            }
        } else {
            Frac {
                num: self.num,
                den: self.den.checked_mul(2).expect("Frac::half overflow"),
            }
        }
    }

    /// Best-effort conversion to `f64` (reporting only; never used for
    /// decisions).
    #[must_use]
    pub fn to_f64(self) -> f64 {
        // Direct cast is fine for the magnitudes the search produces; for
        // very large limbs fall back to a quotient of rounded halves.
        self.num as f64 / self.den as f64
    }

    fn checked_mul_reduced(a: i128, b: i128) -> i128 {
        a.checked_mul(b).expect("Frac arithmetic overflowed i128")
    }
}

impl From<i128> for Frac {
    fn from(v: i128) -> Self {
        Frac { num: v, den: 1 }
    }
}

impl From<u64> for Frac {
    fn from(v: u64) -> Self {
        Frac {
            num: i128::from(v),
            den: 1,
        }
    }
}

impl PartialOrd for Frac {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Frac {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare num_a * den_b with num_b * den_a; split on signs first so
        // the magnitude comparison can use unsigned 256-bit products.
        let (a, b) = (self, other);
        let lhs_neg = a.num < 0;
        let rhs_neg = b.num < 0;
        match (lhs_neg, rhs_neg) {
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            _ => {}
        }
        let mag = cmp_prod(
            a.num.unsigned_abs(),
            b.den.unsigned_abs(),
            b.num.unsigned_abs(),
            a.den.unsigned_abs(),
        );
        if lhs_neg {
            mag.reverse()
        } else {
            mag
        }
    }
}

impl Add for Frac {
    type Output = Frac;
    fn add(self, rhs: Frac) -> Frac {
        // a/b + c/d = (a·(d/g) + c·(b/g)) / (b·(d/g)) with g = gcd(b, d);
        // pre-dividing keeps intermediates small.
        let g = gcd(self.den.unsigned_abs(), rhs.den.unsigned_abs()) as i128;
        let db = self.den / g;
        let dd = rhs.den / g;
        let num = Frac::checked_mul_reduced(self.num, dd)
            .checked_add(Frac::checked_mul_reduced(rhs.num, db))
            .expect("Frac addition overflowed i128");
        let den = Frac::checked_mul_reduced(self.den, dd);
        Frac::new(num, den)
    }
}

impl Sub for Frac {
    type Output = Frac;
    fn sub(self, rhs: Frac) -> Frac {
        self + (-rhs)
    }
}

impl Neg for Frac {
    type Output = Frac;
    fn neg(self) -> Frac {
        Frac {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Frac {
    type Output = Frac;
    fn mul(self, rhs: Frac) -> Frac {
        // Cross-cancel before multiplying: (a/b)·(c/d) with g1 = gcd(a, d),
        // g2 = gcd(c, b).
        let g1 = gcd(self.num.unsigned_abs(), rhs.den.unsigned_abs()).max(1) as i128;
        let g2 = gcd(rhs.num.unsigned_abs(), self.den.unsigned_abs()).max(1) as i128;
        let num = Frac::checked_mul_reduced(self.num / g1, rhs.num / g2);
        let den = Frac::checked_mul_reduced(self.den / g2, rhs.den / g1);
        Frac::new(num, den)
    }
}

impl Div for Frac {
    type Output = Frac;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal is intentional
    fn div(self, rhs: Frac) -> Frac {
        self * rhs.recip()
    }
}

impl fmt::Debug for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl fmt::Display for Frac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces_and_normalizes_sign() {
        assert_eq!(Frac::new(2, 4), Frac::new(1, 2));
        assert_eq!(Frac::new(-2, 4), Frac::new(1, -2));
        assert_eq!(Frac::new(-2, -4), Frac::new(1, 2));
        assert_eq!(Frac::new(0, -7), Frac::ZERO);
        let f = Frac::new(-6, 9);
        assert_eq!((f.num(), f.den()), (-2, 3));
    }

    #[test]
    #[should_panic(expected = "denominator must be non-zero")]
    fn zero_denominator_panics() {
        let _ = Frac::new(1, 0);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Frac::new(3, 7);
        let b = Frac::new(2, 5);
        assert_eq!(a + b, Frac::new(29, 35));
        assert_eq!(a - b, Frac::new(1, 35));
        assert_eq!(a * b, Frac::new(6, 35));
        assert_eq!(a / b, Frac::new(15, 14));
        assert_eq!(a + Frac::ZERO, a);
        assert_eq!(a * Frac::ONE, a);
        assert_eq!(a - a, Frac::ZERO);
        assert_eq!((a / a), Frac::ONE);
    }

    #[test]
    fn half_and_double_paths() {
        assert_eq!(Frac::new(4, 3).half(), Frac::new(2, 3));
        assert_eq!(Frac::new(3, 4).half(), Frac::new(3, 8));
        assert_eq!(Frac::ZERO.half(), Frac::ZERO);
    }

    #[test]
    fn ordering_is_exact_near_ties() {
        // Adjacent Farey fractions differ by 1/(b1*b2); make sure we resolve
        // them and their negations.
        let a = Frac::new(355, 113);
        let b = Frac::new(22, 7);
        assert!(a < b);
        assert!(-a > -b);
        assert!(Frac::new(1, 3) < Frac::new(1, 2));
        assert!(Frac::new(-1, 3) > Frac::new(-1, 2));
        assert_eq!(Frac::new(10, 20).cmp(&Frac::new(1, 2)), Ordering::Equal);
    }

    #[test]
    fn ordering_with_huge_components() {
        let big = i128::MAX / 3;
        let a = Frac::new(big, big - 1); // slightly above 1
        let b = Frac::new(big + 1, big); // slightly above 1, smaller excess
        assert!(a > b, "cross products exceed i128 but must still compare");
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Frac::new(7, 2).floor(), 3);
        assert_eq!(Frac::new(7, 2).ceil(), 4);
        assert_eq!(Frac::new(-7, 2).floor(), -4);
        assert_eq!(Frac::new(-7, 2).ceil(), -3);
        assert_eq!(Frac::new(6, 2).floor(), 3);
        assert_eq!(Frac::new(6, 2).ceil(), 3);
        assert_eq!(Frac::ZERO.floor(), 0);
    }

    #[test]
    fn recip_and_display() {
        assert_eq!(Frac::new(3, 4).recip(), Frac::new(4, 3));
        assert_eq!(Frac::new(-3, 4).recip(), Frac::new(-4, 3));
        assert_eq!(format!("{}", Frac::new(3, 4)), "3/4");
        assert_eq!(format!("{}", Frac::from(5i128)), "5");
        assert_eq!(format!("{:?}", Frac::from(5i128)), "5/1");
    }

    #[test]
    fn to_f64_tracks_value() {
        assert!((Frac::new(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
        assert!((Frac::new(-7, 2).to_f64() + 3.5).abs() < 1e-15);
    }
}
