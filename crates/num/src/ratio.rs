//! Reduced non-negative ratios `a/b` indexing the `|S|/|T|` search space.

use std::cmp::Ordering;
use std::fmt;

use crate::{gcd64, Frac};

/// A reduced fraction `a/b` with `a, b ≥ 0`, not both zero.
///
/// `Ratio { a, b: 0 }` denotes `+∞` and `Ratio { a: 0, b }` denotes `0`;
/// both appear only as the virtual endpoints of the Stern–Brocot tree that
/// the exact search walks. Every *achievable* `|S|/|T|` ratio of an
/// `n`-vertex graph is a `Ratio` with `a, b ∈ [1, n]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ratio {
    a: u64,
    b: u64,
}

impl Ratio {
    /// The left endpoint `0/1` of the ratio space.
    pub const ZERO: Ratio = Ratio { a: 0, b: 1 };
    /// The right endpoint `1/0 = +∞` of the ratio space.
    pub const INFINITY: Ratio = Ratio { a: 1, b: 0 };
    /// The balanced ratio `1/1`.
    pub const ONE: Ratio = Ratio { a: 1, b: 1 };

    /// Creates the reduced ratio `a/b`.
    ///
    /// # Panics
    /// Panics if both components are zero.
    #[must_use]
    pub fn new(a: u64, b: u64) -> Self {
        assert!(a != 0 || b != 0, "ratio 0/0 is undefined");
        let g = gcd64(a, b).max(1);
        Ratio { a: a / g, b: b / g }
    }

    /// Numerator of the reduced form.
    #[must_use]
    pub fn a(self) -> u64 {
        self.a
    }

    /// Denominator of the reduced form (0 for `+∞`).
    #[must_use]
    pub fn b(self) -> u64 {
        self.b
    }

    /// `true` for the `+∞` endpoint.
    #[must_use]
    pub fn is_infinite(self) -> bool {
        self.b == 0
    }

    /// `true` for the `0` endpoint.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.a == 0
    }

    /// The Stern–Brocot mediant `(a₁+a₂)/(b₁+b₂)`.
    ///
    /// For Stern–Brocot *neighbours* the mediant is automatically in lowest
    /// terms and is the minimum-denominator fraction strictly between them.
    #[must_use]
    pub fn mediant(self, other: Ratio) -> Ratio {
        Ratio::new(self.a + other.a, self.b + other.b)
    }

    /// The reciprocal `b/a` (swaps the roles of S and T). Never panics: the
    /// endpoints swap as `0 ↔ ∞`.
    #[must_use]
    pub fn recip(self) -> Ratio {
        Ratio {
            a: self.b,
            b: self.a,
        }
    }

    /// Exact conversion to a [`Frac`].
    ///
    /// # Panics
    /// Panics on the `+∞` endpoint.
    #[must_use]
    pub fn as_frac(self) -> Frac {
        assert!(!self.is_infinite(), "infinite ratio has no Frac form");
        Frac::new(i128::from(self.a), i128::from(self.b))
    }

    /// Numeric value (`f64::INFINITY` for the right endpoint); reporting
    /// only.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        if self.is_infinite() {
            f64::INFINITY
        } else {
            self.a as f64 / self.b as f64
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        // a₁/b₁ vs a₂/b₂ ⟺ a₁·b₂ vs a₂·b₁; works for the 0 and ∞
        // endpoints because they are 0/1 and 1/0.
        let lhs = u128::from(self.a) * u128::from(other.b);
        let rhs = u128::from(other.a) * u128::from(self.b);
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{}/{}", self.a, self.b)
        }
    }
}

/// Enumerates every reduced ratio `a/b` with `1 ≤ a, b ≤ n`, in increasing
/// order of value.
///
/// This is the candidate set the `O(n²)`-ratio baselines iterate; its size
/// is `Θ(n²)` (about `6n²/π² ≈ 0.61·n²`), which is exactly why the
/// divide-and-conquer exact algorithm exists.
#[must_use]
pub fn candidate_ratios(n: u64) -> Vec<Ratio> {
    let mut out = Vec::new();
    for a in 1..=n {
        for b in 1..=n {
            if gcd64(a, b) == 1 {
                out.push(Ratio { a, b });
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_and_accessors() {
        let r = Ratio::new(6, 4);
        assert_eq!((r.a(), r.b()), (3, 2));
        assert_eq!(Ratio::new(0, 5), Ratio::ZERO);
        assert_eq!(Ratio::new(5, 0), Ratio::INFINITY);
    }

    #[test]
    #[should_panic(expected = "0/0")]
    fn zero_zero_rejected() {
        let _ = Ratio::new(0, 0);
    }

    #[test]
    fn ordering_including_endpoints() {
        let vals = [
            Ratio::ZERO,
            Ratio::new(1, 3),
            Ratio::new(1, 2),
            Ratio::ONE,
            Ratio::new(3, 2),
            Ratio::new(7, 2),
            Ratio::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} < {}", w[0], w[1]);
        }
        assert_eq!(Ratio::new(2, 4).cmp(&Ratio::new(1, 2)), Ordering::Equal);
    }

    #[test]
    fn mediant_walks_the_stern_brocot_tree() {
        let root = Ratio::ZERO.mediant(Ratio::INFINITY);
        assert_eq!(root, Ratio::ONE);
        assert_eq!(Ratio::ZERO.mediant(root), Ratio::new(1, 2));
        assert_eq!(root.mediant(Ratio::INFINITY), Ratio::new(2, 1));
        // Mediant lies strictly between its parents.
        let (lo, hi) = (Ratio::new(2, 3), Ratio::new(3, 4));
        let m = lo.mediant(hi);
        assert!(lo < m && m < hi);
    }

    #[test]
    fn recip_swaps_sides() {
        assert_eq!(Ratio::new(3, 7).recip(), Ratio::new(7, 3));
        assert_eq!(Ratio::ZERO.recip(), Ratio::INFINITY);
        assert_eq!(Ratio::INFINITY.recip(), Ratio::ZERO);
    }

    #[test]
    fn as_frac_and_to_f64() {
        assert_eq!(Ratio::new(3, 4).as_frac(), Frac::new(3, 4));
        assert!((Ratio::new(3, 4).to_f64() - 0.75).abs() < 1e-15);
        assert!(Ratio::INFINITY.to_f64().is_infinite());
    }

    #[test]
    fn candidate_ratios_small() {
        // n = 3: {1/3, 1/2, 2/3, 1/1, 3/2, 2/1, 3/1}.
        let got = candidate_ratios(3);
        let want: Vec<Ratio> = [(1, 3), (1, 2), (2, 3), (1, 1), (3, 2), (2, 1), (3, 1)]
            .into_iter()
            .map(|(a, b)| Ratio::new(a, b))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn candidate_ratios_are_sorted_unique_and_reduced() {
        let got = candidate_ratios(12);
        for w in got.windows(2) {
            assert!(w[0] < w[1]);
        }
        for r in &got {
            assert_eq!(gcd64(r.a(), r.b()), 1);
            assert!(r.a() >= 1 && r.a() <= 12 && r.b() >= 1 && r.b() <= 12);
        }
        // Farey-type count: 2·(Σ_{k≤n} φ(k)) − 1 = 2·46 − 1 = 91 for n = 12.
        assert_eq!(got.len(), 91);
    }
}
