//! 256-bit helpers: widening multiplication and product comparison.
//!
//! The exact orderings in this crate compare products of `u128` values that
//! can overflow 128 bits (e.g. `edges² · s · t` for [`Density`]). Instead of
//! a big-integer dependency we split each factor into 64-bit limbs and
//! compare the resulting `(hi, lo)` pairs.
//!
//! [`Density`]: crate::Density

use std::cmp::Ordering;

/// Full 256-bit product of two `u128` values as `(hi, lo)` limbs.
#[must_use]
pub fn mul_wide(a: u128, b: u128) -> (u128, u128) {
    const MASK: u128 = (1u128 << 64) - 1;
    let (a_hi, a_lo) = (a >> 64, a & MASK);
    let (b_hi, b_lo) = (b >> 64, b & MASK);

    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;

    // Sum the three contributions to the middle 128 bits, tracking carries.
    let mid = (ll >> 64) + (lh & MASK) + (hl & MASK);
    let lo = (mid << 64) | (ll & MASK);
    let hi = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
    (hi, lo)
}

/// Compares `a0 * a1` with `b0 * b1` exactly (no overflow, no rounding).
#[must_use]
pub fn cmp_prod(a0: u128, a1: u128, b0: u128, b1: u128) -> Ordering {
    let a = mul_wide(a0, a1);
    let b = mul_wide(b0, b1);
    a.cmp(&b)
}

/// Full 384-bit product `a · b · c` as `[hi, mid, lo]` limbs of 128 bits.
///
/// Used by the exact γ-transfer tie test in `dds-core`, whose squared
/// comparison multiplies three `u128` factors.
#[must_use]
pub fn mul3_wide(a: u128, b: u128, c: u128) -> [u128; 3] {
    let (hi, lo) = mul_wide(a, b);
    // (hi·2^128 + lo)·c: two widening products plus one carry.
    let (lo_hi, lo_lo) = mul_wide(lo, c);
    let (hi_hi, hi_lo) = mul_wide(hi, c);
    let (mid, carry) = lo_hi.overflowing_add(hi_lo);
    // hi_hi ≤ 2^128 − 2 (high limb of a 256-bit product), so +1 cannot wrap.
    [hi_hi + u128::from(carry), mid, lo_lo]
}

/// Compares `a0 · a1 · a2` with `b0 · b1 · b2` exactly via 384-bit products.
#[must_use]
pub fn cmp_prod3(a0: u128, a1: u128, a2: u128, b0: u128, b1: u128, b2: u128) -> Ordering {
    mul3_wide(a0, a1, a2).cmp(&mul3_wide(b0, b1, b2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_products() {
        assert_eq!(mul_wide(0, 0), (0, 0));
        assert_eq!(mul_wide(1, 1), (0, 1));
        assert_eq!(mul_wide(7, 6), (0, 42));
        assert_eq!(
            mul_wide(u128::from(u64::MAX), u128::from(u64::MAX)),
            (0, u64::MAX as u128 * u64::MAX as u128)
        );
    }

    #[test]
    fn overflowing_products() {
        // (2^127) * 2 = 2^128 -> hi = 1, lo = 0.
        assert_eq!(mul_wide(1u128 << 127, 2), (1, 0));
        // MAX * MAX = 2^256 - 2^129 + 1.
        let (hi, lo) = mul_wide(u128::MAX, u128::MAX);
        assert_eq!(lo, 1);
        assert_eq!(hi, u128::MAX - 1);
    }

    #[test]
    fn cmp_prod_agrees_with_exact_values() {
        let cases = [
            (3u128, 5u128, 4u128, 4u128),            // 15 < 16
            (1 << 100, 1 << 100, 1 << 120, 1 << 79), // 2^200 > 2^199
            (u128::MAX, 1, 1, u128::MAX),            // equal
            (0, u128::MAX, 1, 1),                    // 0 < 1
        ];
        let expected = [
            Ordering::Less,
            Ordering::Greater,
            Ordering::Equal,
            Ordering::Less,
        ];
        for ((a0, a1, b0, b1), want) in cases.into_iter().zip(expected) {
            assert_eq!(cmp_prod(a0, a1, b0, b1), want, "{a0}*{a1} vs {b0}*{b1}");
        }
    }

    #[test]
    fn mul3_wide_small_and_overflowing() {
        assert_eq!(mul3_wide(0, 5, 9), [0, 0, 0]);
        assert_eq!(mul3_wide(2, 3, 7), [0, 0, 42]);
        // 2^127 · 2 · 2 = 2^129 → mid limb 2.
        assert_eq!(mul3_wide(1u128 << 127, 2, 2), [0, 2, 0]);
        // MAX·MAX·MAX = (2^128−1)^3 = 2^384 − 3·2^256 + 3·2^128 − 1.
        let m = u128::MAX;
        assert_eq!(mul3_wide(m, m, m), [m - 2, 2, m]);
    }

    #[test]
    fn cmp_prod3_agrees_with_exact_values() {
        assert_eq!(cmp_prod3(3, 5, 7, 4, 4, 7), Ordering::Less); // 105 < 112
        assert_eq!(
            cmp_prod3(1 << 100, 1 << 100, 1 << 100, 1 << 120, 1 << 120, 1 << 60),
            Ordering::Equal // 2^300 both
        );
        assert_eq!(
            cmp_prod3(u128::MAX, u128::MAX, 2, u128::MAX, u128::MAX, 1),
            Ordering::Greater
        );
        // Permuting factors never changes the order.
        let (a, b, c) = ((1u128 << 90) + 17, (1u128 << 101) + 3, 977);
        let want = mul3_wide(a, b, c);
        assert_eq!(mul3_wide(c, a, b), want);
        assert_eq!(mul3_wide(b, c, a), want);
    }

    #[test]
    fn cmp_prod_symmetry() {
        let vals = [
            0u128,
            1,
            2,
            1 << 64,
            (1 << 64) + 3,
            u128::MAX / 3,
            u128::MAX,
        ];
        for &a0 in &vals {
            for &a1 in &vals {
                for &b0 in &vals {
                    for &b1 in &vals {
                        let fwd = cmp_prod(a0, a1, b0, b1);
                        let rev = cmp_prod(b0, b1, a0, a1);
                        assert_eq!(fwd, rev.reverse());
                        assert_eq!(cmp_prod(a1, a0, b0, b1), fwd, "commutativity");
                    }
                }
            }
        }
    }
}
