//! Property tests for the exact numeric kernels.

use dds_num::{gcd, isqrt, simplest_between, Density, Frac, Ratio};
use proptest::prelude::*;

fn small_frac() -> impl Strategy<Value = Frac> {
    (-2_000i128..2_000, 1i128..2_000).prop_map(|(n, d)| Frac::new(n, d))
}

fn nonneg_frac() -> impl Strategy<Value = Frac> {
    (0i128..2_000, 1i128..2_000).prop_map(|(n, d)| Frac::new(n, d))
}

proptest! {
    /// Field axioms (on the subdomain where i128 cannot overflow).
    #[test]
    fn frac_arithmetic_axioms(a in small_frac(), b in small_frac(), c in small_frac()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Frac::ZERO);
        if !b.is_zero() {
            prop_assert_eq!((a / b) * b, a);
        }
    }

    /// Ordering is total and agrees with f64 when far from ties.
    #[test]
    fn frac_ordering_consistency(a in small_frac(), b in small_frac()) {
        let ord = a.cmp(&b);
        prop_assert_eq!(b.cmp(&a), ord.reverse());
        let (fa, fb) = (a.to_f64(), b.to_f64());
        if (fa - fb).abs() > 1e-6 {
            prop_assert_eq!(fa < fb, ord == std::cmp::Ordering::Less);
        }
    }

    /// floor/ceil bracket the value and differ only on non-integers.
    #[test]
    fn frac_floor_ceil(a in small_frac()) {
        let fl = a.floor();
        let ce = a.ceil();
        prop_assert!(Frac::from(fl) <= a && a <= Frac::from(ce));
        prop_assert!(ce - fl <= 1);
        prop_assert_eq!(ce == fl, a == Frac::from(fl));
    }

    /// isqrt is the exact floor square root.
    #[test]
    fn isqrt_is_floor_sqrt(n in any::<u128>()) {
        let r = isqrt(n);
        prop_assert!(r.checked_mul(r).is_none_or(|sq| sq <= n) && r * r <= n);
        if let Some(next_sq) = (r + 1).checked_mul(r + 1) {
            prop_assert!(next_sq > n);
        }
    }

    /// gcd divides both arguments and is maximal against a sample of
    /// divisors.
    #[test]
    fn gcd_divides(a in 1u128..1_000_000, b in 1u128..1_000_000) {
        let g = gcd(a, b);
        prop_assert_eq!(a % g, 0);
        prop_assert_eq!(b % g, 0);
        prop_assert_eq!(gcd(a / g, b / g), 1);
    }

    /// simplest_between: strictly inside, and minimal denominator among a
    /// brute-force scan of simpler fractions.
    #[test]
    fn simplest_between_minimality(a in nonneg_frac(), b in nonneg_frac()) {
        prop_assume!(a != b);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let got = simplest_between(lo, hi);
        prop_assert!(lo < got && got < hi);
        // No fraction with a smaller denominator fits inside.
        for d in 1..got.den() {
            let n_lo = (lo * Frac::from(d)).floor();
            let n_hi = (hi * Frac::from(d)).ceil();
            for n in n_lo..=n_hi {
                let cand = Frac::new(n, d);
                prop_assert!(!(lo < cand && cand < hi),
                    "{cand:?} simpler than {got:?} in ({lo:?},{hi:?})");
            }
        }
    }

    /// Density ordering matches exact rational comparison of squares.
    #[test]
    fn density_order_matches_squared_compare(
        e1 in 0u64..10_000, s1 in 1u64..100, t1 in 1u64..100,
        e2 in 0u64..10_000, s2 in 1u64..100, t2 in 1u64..100,
    ) {
        let a = Density::new(e1, s1, t1);
        let b = Density::new(e2, s2, t2);
        // ρ_a vs ρ_b ⟺ ρ_a² vs ρ_b² for non-negative values.
        prop_assert_eq!(a.cmp(&b), a.squared().cmp(&b.squared()));
        prop_assert_eq!(a == b, a.squared() == b.squared());
    }

    /// β lower bound really lower-bounds ρ·√(ab) and is tight to 1e-5.
    #[test]
    fn beta_lower_bound_brackets(
        e in 1u64..5_000, s in 1u64..200, t in 1u64..200,
        a in 1u64..50, b in 1u64..50,
    ) {
        let d = Density::new(e, s, t);
        let lb = d.beta_lower_bound(a, b).to_f64();
        let exact = d.to_f64() * ((a as f64) * (b as f64)).sqrt();
        prop_assert!(lb <= exact * (1.0 + 1e-12));
        prop_assert!(lb >= exact * (1.0 - 1e-5), "bound too loose: {lb} vs {exact}");
    }

    /// Ratio mediants stay strictly between their parents.
    #[test]
    fn mediant_between_parents(a1 in 0u64..500, b1 in 1u64..500, a2 in 1u64..500, b2 in 0u64..500) {
        let l = Ratio::new(a1, b1);
        let r = Ratio::new(a2, b2);
        prop_assume!(l < r);
        let m = l.mediant(r);
        prop_assert!(l < m && m < r);
    }
}
