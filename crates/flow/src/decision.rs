//! The per-guess decision procedure of the exact DDS search.
//!
//! For a ratio `c = a/b` define the *c-weighted density* of a pair `(S, T)`
//! as
//!
//! ```text
//! w_c(S, T) = 2·|E(S,T)| / (|S|/√c + √c·|T|)
//! ```
//!
//! By AM–GM `w_c(S,T) ≤ ρ(S,T)` always, with equality iff `|S|/|T| = c`
//! exactly; maximised over all pairs it equals `ρ_opt` at the optimum's own
//! ratio. The exact algorithms binary-search the *β-image* of this value,
//! `β = w_c·√(ab)`, which is rational: `β*(S,T) = 2abE/(b|S| + a|T|)`.
//!
//! [`decide`] answers "does any pair have `w_c > β/√(ab)`?" by a single
//! min-cut on the project-selection network derived in `DESIGN.md §2.3`:
//! maximising `f(S,T) = |E(S,T)| − p|S| − q|T|` with `p = β/(2a)`,
//! `q = β/(2b)` (both rational!), scaled by `K = 2abQ` (β = P/Q) to integer
//! capacities:
//!
//! ```text
//! s → u_S : d⁺(u)·K        u_S → v_T : K   (one per edge)
//! u_S → t : P·b            v_T → t   : P·a
//! ```
//!
//! `min cut = K·m − max f_scaled`, so the guess is exceeded iff
//! `min cut < K·m`. When the cut equals `K·m` *and* the guess hits the
//! optimum exactly, the empty pair and the optimal pair are both
//! maximisers; the **maximal** min-cut source side recovers the non-trivial
//! one ([`Decision::Certified`]'s `boundary`).

use dds_graph::{DiGraph, Pair, StMask, VertexId};
use dds_num::Frac;

use crate::executor::{FlowExecutor, SerialExecutor};
use crate::FlowArena;

/// Outcome of one guess of the per-ratio search.
#[derive(Clone, Debug)]
pub enum Decision {
    /// Certified: **no** pair inside the alive mask has `β*(S,T) > β`.
    Certified {
        /// A pair achieving `β*(S,T) = β` exactly, if one exists (recovered
        /// from the maximal min cut; `None` when the guess is strictly
        /// above the optimum).
        boundary: Option<Pair>,
    },
    /// A pair with `β*(S,T) > β` (extracted from the minimal min cut).
    Exceeds(Pair),
}

/// Size of the flow network a decision built (experiment E3 instruments
/// these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecisionStats {
    /// Nodes including source and sink.
    pub nodes: usize,
    /// Directed edges (excluding residual twins).
    pub edges: usize,
    /// Edges of the graph that were alive for this decision.
    pub alive_edges: u64,
}

/// Runs the min-cut decision for ratio `a/b` and guess `β` on the subgraph
/// selected by `alive`.
///
/// Vertices outside the mask — and vertices that cannot possibly join a
/// maximiser (no alive out-edge on the S side / no alive in-edge on the T
/// side) — are never materialised, which is how core-based pruning shrinks
/// the network.
///
/// # Panics
/// Panics if `a == 0`, `b == 0`, `β ≤ 0`, or a capacity product overflows
/// `u128` (far beyond any graph this workspace targets).
pub fn decide(
    g: &DiGraph,
    alive: &StMask,
    a: u64,
    b: u64,
    beta: Frac,
) -> (Decision, DecisionStats) {
    decide_in(&mut FlowArena::new(), g, alive, a, b, beta)
}

/// [`decide`] with the flow network drawn from a caller-owned [`FlowArena`]:
/// identical answers, but the node/edge buffers are recycled between calls
/// instead of reallocated. This is the entry point the `SolveContext`-based
/// exact search uses; `decide` itself is the one-shot convenience wrapper.
///
/// # Panics
/// Same conditions as [`decide`].
pub fn decide_in(
    arena: &mut FlowArena,
    g: &DiGraph,
    alive: &StMask,
    a: u64,
    b: u64,
    beta: Frac,
) -> (Decision, DecisionStats) {
    decide_in_with(arena, g, alive, a, b, beta, &SerialExecutor)
}

/// [`decide_in`] with the max-flow phases run on `exec`'s workers (see
/// [`FlowNetwork::max_flow_with`]): identical decisions and identical
/// recovered pairs — min-cut sides are invariant across maximum flows —
/// with the per-guess wall time divided across the executor's width on
/// networks above the parallel threshold.
///
/// [`FlowNetwork::max_flow_with`]: crate::FlowNetwork::max_flow_with
///
/// # Panics
/// Same conditions as [`decide`].
pub fn decide_in_with(
    arena: &mut FlowArena,
    g: &DiGraph,
    alive: &StMask,
    a: u64,
    b: u64,
    beta: Frac,
    exec: &dyn FlowExecutor,
) -> (Decision, DecisionStats) {
    assert!(a > 0 && b > 0, "ratio components must be positive");
    assert!(
        !beta.is_negative() && !beta.is_zero(),
        "decision guess must be strictly positive"
    );
    let n = g.n();
    debug_assert_eq!(alive.in_s.len(), n);

    // Collect S-side candidates (alive in S, ≥1 alive out-edge) and T-side
    // candidates (alive in T, ≥1 alive in-edge).
    let mut s_vertices: Vec<VertexId> = Vec::new();
    let mut s_alive_deg: Vec<u64> = Vec::new();
    let mut m_alive: u64 = 0;
    for u in 0..n {
        if !alive.in_s[u] {
            continue;
        }
        let d = g
            .out_neighbors(u as VertexId)
            .iter()
            .filter(|&&v| alive.in_t[v as usize])
            .count() as u64;
        if d > 0 {
            s_vertices.push(u as VertexId);
            s_alive_deg.push(d);
            m_alive += d;
        }
    }
    if m_alive == 0 {
        // No alive edges: every non-empty pair has f < 0.
        return (
            Decision::Certified { boundary: None },
            DecisionStats::default(),
        );
    }
    let mut t_index = vec![u32::MAX; n];
    let mut t_vertices: Vec<VertexId> = Vec::new();
    for &u in &s_vertices {
        for &v in g.out_neighbors(u) {
            if alive.in_t[v as usize] && t_index[v as usize] == u32::MAX {
                t_index[v as usize] = t_vertices.len() as u32;
                t_vertices.push(v);
            }
        }
    }

    // Integer capacity scale: K = 2abQ with β = P/Q.
    let p = u128::try_from(beta.num()).expect("β numerator positive");
    let q = u128::try_from(beta.den()).expect("β denominator positive");
    let k = 2u128
        .checked_mul(u128::from(a))
        .and_then(|x| x.checked_mul(u128::from(b)))
        .and_then(|x| x.checked_mul(q))
        .expect("capacity scale 2abQ overflowed u128");
    let cap_s_to_t_edge = k;
    let cap_us_to_sink = p.checked_mul(u128::from(b)).expect("P·b overflowed u128");
    let cap_vt_to_sink = p.checked_mul(u128::from(a)).expect("P·a overflowed u128");

    // Node layout: 0 = source, 1 = sink, then S nodes, then T nodes.
    let ns = s_vertices.len();
    let nt = t_vertices.len();
    let s_node = |i: usize| 2 + i;
    let t_node = |j: usize| 2 + ns + j;
    let net = arena.acquire(2 + ns + nt);
    for (i, (&u, &d)) in s_vertices.iter().zip(&s_alive_deg).enumerate() {
        net.add_edge(
            0,
            s_node(i),
            u128::from(d).checked_mul(k).expect("d·K overflow"),
        );
        net.add_edge(s_node(i), 1, cap_us_to_sink);
        for &v in g.out_neighbors(u) {
            if alive.in_t[v as usize] {
                net.add_edge(
                    s_node(i),
                    t_node(t_index[v as usize] as usize),
                    cap_s_to_t_edge,
                );
            }
        }
    }
    for j in 0..nt {
        net.add_edge(t_node(j), 1, cap_vt_to_sink);
    }

    let stats = DecisionStats {
        nodes: net.num_nodes(),
        edges: net.num_edges(),
        alive_edges: m_alive,
    };

    let budget = u128::from(m_alive)
        .checked_mul(k)
        .expect("K·m overflowed u128");
    let flow = net.max_flow_with(0, 1, exec);
    debug_assert!(flow <= budget, "cut can never exceed the trivial {{s}} cut");

    let extract = |side: &[bool]| -> Pair {
        let s: Vec<VertexId> = s_vertices
            .iter()
            .enumerate()
            .filter(|(i, _)| side[s_node(*i)])
            .map(|(_, &u)| u)
            .collect();
        let t: Vec<VertexId> = t_vertices
            .iter()
            .enumerate()
            .filter(|(j, _)| side[t_node(*j)])
            .map(|(_, &v)| v)
            .collect();
        Pair::new(s, t)
    };

    if flow < budget {
        let side = net.min_cut_source_side(0);
        let pair = extract(&side);
        debug_assert!(
            !pair.is_empty(),
            "positive objective implies non-empty pair"
        );
        (Decision::Exceeds(pair), stats)
    } else {
        let side = net.max_cut_source_side(1);
        let pair = extract(&side);
        let boundary = if pair.is_empty() { None } else { Some(pair) };
        (Decision::Certified { boundary }, stats)
    }
}

/// Exact β-value `β*(S,T) = 2abE / (b|S| + a|T|)` of a pair under ratio
/// `a/b`; the quantity [`decide`] brackets.
///
/// # Panics
/// Panics if the pair is empty or products overflow `i128`.
#[must_use]
pub fn beta_of_pair(g: &DiGraph, pair: &Pair, a: u64, b: u64) -> Frac {
    assert!(!pair.is_empty(), "β* undefined for empty pairs");
    let e = pair.edges_between(g);
    let num = 2i128
        .checked_mul(i128::from(a))
        .and_then(|x| x.checked_mul(i128::from(b)))
        .and_then(|x| x.checked_mul(i128::from(e)))
        .expect("β* numerator overflow");
    let den = i128::from(b)
        .checked_mul(pair.s().len() as i128)
        .and_then(|x| {
            i128::from(a)
                .checked_mul(pair.t().len() as i128)
                .and_then(|y| x.checked_add(y))
        })
        .expect("β* denominator overflow");
    Frac::new(num, den)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_graph::gen;

    /// Brute-force maximum β* over all non-empty pairs within the mask.
    fn brute_max_beta(g: &DiGraph, alive: &StMask, a: u64, b: u64) -> Option<(Frac, Pair)> {
        let verts: Vec<VertexId> = (0..g.n() as VertexId).collect();
        let s_opts: Vec<VertexId> = verts
            .iter()
            .copied()
            .filter(|&v| alive.in_s[v as usize])
            .collect();
        let t_opts: Vec<VertexId> = verts
            .iter()
            .copied()
            .filter(|&v| alive.in_t[v as usize])
            .collect();
        let mut best: Option<(Frac, Pair)> = None;
        for s_bits in 1u32..(1 << s_opts.len()) {
            let s: Vec<VertexId> = s_opts
                .iter()
                .enumerate()
                .filter(|(i, _)| s_bits >> i & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            for t_bits in 1u32..(1 << t_opts.len()) {
                let t: Vec<VertexId> = t_opts
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| t_bits >> j & 1 == 1)
                    .map(|(_, &v)| v)
                    .collect();
                let pair = Pair::new(s.clone(), t);
                let beta = beta_of_pair(g, &pair, a, b);
                if best.as_ref().is_none_or(|(b0, _)| beta > *b0) {
                    best = Some((beta, pair));
                }
            }
        }
        best
    }

    fn check_against_brute(g: &DiGraph, a: u64, b: u64) {
        let alive = StMask::full(g.n());
        let (best_beta, _) = brute_max_beta(g, &alive, a, b).unwrap();
        if best_beta.is_zero() {
            return; // no positive guesses to test
        }

        // Guess strictly below the optimum ⇒ Exceeds, and the recovered
        // pair must beat the guess.
        let below = best_beta * Frac::new(9, 10);
        let (dec, stats) = decide(g, &alive, a, b, below);
        match dec {
            Decision::Exceeds(pair) => {
                assert!(beta_of_pair(g, &pair, a, b) > below);
            }
            other => panic!("expected Exceeds below the optimum, got {other:?}"),
        }
        assert!(stats.nodes >= 3);

        // Guess exactly at the optimum ⇒ Certified with a boundary pair of
        // exactly that value.
        let (dec, _) = decide(g, &alive, a, b, best_beta);
        match dec {
            Decision::Certified {
                boundary: Some(pair),
            } => {
                assert_eq!(beta_of_pair(g, &pair, a, b), best_beta);
            }
            other => panic!("expected boundary recovery at the optimum, got {other:?}"),
        }

        // Guess strictly above ⇒ Certified with no boundary.
        let above = best_beta * Frac::new(11, 10);
        let (dec, _) = decide(g, &alive, a, b, above);
        assert!(
            matches!(dec, Decision::Certified { boundary: None }),
            "expected clean certificate above the optimum"
        );
    }

    #[test]
    fn matches_brute_force_on_fixtures() {
        for (a, b) in [(1, 1), (1, 2), (2, 1), (2, 3), (5, 1)] {
            check_against_brute(&gen::complete_bipartite(2, 3), a, b);
            check_against_brute(&gen::out_star(4), a, b);
            check_against_brute(&gen::cycle(5), a, b);
            check_against_brute(&gen::path(5), a, b);
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..8 {
            let g = gen::gnm(8, 20, seed);
            for (a, b) in [(1, 1), (1, 3), (3, 2)] {
                check_against_brute(&g, a, b);
            }
        }
    }

    #[test]
    fn respects_alive_mask() {
        // K_{2,3}: masking out the strongest T vertices must lower the
        // certified optimum.
        let g = gen::complete_bipartite(2, 3);
        let mut alive = StMask::full(g.n());
        alive.in_t[2] = false;
        alive.in_t[3] = false; // only T = {4} remains
        let (best_beta, best_pair) = brute_max_beta(&g, &alive, 1, 1).unwrap();
        assert_eq!(best_pair.t(), &[4]);
        let (dec, _) = decide(&g, &alive, 1, 1, best_beta);
        match dec {
            Decision::Certified {
                boundary: Some(pair),
            } => {
                assert!(pair.t().iter().all(|&v| v == 4));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_alive_graph_certifies_immediately() {
        let g = gen::path(3);
        let alive = StMask::empty(g.n());
        let (dec, stats) = decide(&g, &alive, 1, 1, Frac::ONE);
        assert!(matches!(dec, Decision::Certified { boundary: None }));
        assert_eq!(stats, DecisionStats::default());
    }

    #[test]
    fn network_size_reflects_pruning() {
        let g = gen::complete_bipartite(3, 3);
        let full = StMask::full(g.n());
        let (_, full_stats) = decide(&g, &full, 1, 1, Frac::new(1, 2));
        let mut half = StMask::full(g.n());
        half.in_s[0] = false;
        let (_, half_stats) = decide(&g, &half, 1, 1, Frac::new(1, 2));
        assert!(half_stats.nodes < full_stats.nodes);
        assert!(half_stats.edges < full_stats.edges);
        assert!(half_stats.alive_edges < full_stats.alive_edges);
    }

    #[test]
    fn beta_of_pair_closed_form() {
        // K_{2,3}, pair = everything: β* = 2·a·b·6/(b·2 + a·3).
        let g = gen::complete_bipartite(2, 3);
        let pair = Pair::new(vec![0, 1], vec![2, 3, 4]);
        assert_eq!(beta_of_pair(&g, &pair, 1, 1), Frac::new(12, 5));
        assert_eq!(beta_of_pair(&g, &pair, 2, 3), Frac::new(72, 12));
    }

    #[test]
    fn arena_reuse_matches_one_shot_decisions() {
        // Replay a sequence of decisions through one arena and compare each
        // outcome with a fresh-allocation decide.
        let g = gen::gnm(9, 24, 5);
        let alive = StMask::full(g.n());
        let mut arena = FlowArena::new();
        let guesses = [
            (1u64, 1u64, Frac::new(1, 2)),
            (1, 1, Frac::new(5, 2)),
            (2, 3, Frac::new(7, 3)),
            (3, 1, Frac::new(1, 4)),
            (1, 1, Frac::new(5, 2)), // repeat: recycled buffers, same answer
        ];
        for (i, &(a, b, beta)) in guesses.iter().enumerate() {
            let (fresh, fresh_stats) = decide(&g, &alive, a, b, beta);
            let (reused, reused_stats) = decide_in(&mut arena, &g, &alive, a, b, beta);
            assert_eq!(fresh_stats, reused_stats, "guess #{i}");
            match (fresh, reused) {
                (Decision::Exceeds(p1), Decision::Exceeds(p2)) => {
                    // Both must beat the guess; the pair itself is unique
                    // here because the minimal min cut is unique.
                    assert!(beta_of_pair(&g, &p1, a, b) > beta);
                    assert_eq!(p1, p2, "guess #{i}");
                }
                (Decision::Certified { boundary: b1 }, Decision::Certified { boundary: b2 }) => {
                    assert_eq!(b1, b2, "guess #{i}");
                }
                (f, r) => panic!("guess #{i}: fresh {f:?} vs reused {r:?}"),
            }
        }
        assert_eq!(arena.acquires(), guesses.len());
        assert_eq!(arena.reuse_hits(), guesses.len() - 1);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_guess_rejected() {
        let g = gen::path(3);
        let _ = decide(&g, &StMask::full(3), 1, 1, Frac::ZERO);
    }
}
