//! Dinic's maximum-flow algorithm over `u128` capacities.
//!
//! The exact DDS search scales its rational capacities to integers; with
//! ratios up to `n` and guess denominators up to `n(a+b)` the products need
//! far more than 64 bits, so the arithmetic is `u128` throughout (checked:
//! overflow panics loudly instead of corrupting a decision).
//!
//! Besides the flow value, the DDS search needs **both** canonical min
//! cuts:
//!
//! * the *minimal* source side (BFS from `s` in the residual graph) — the
//!   smallest maximizer of the cut objective;
//! * the *maximal* source side (complement of the set that reaches `t` in
//!   the residual graph) — required to recover an optimal pair when the
//!   binary-search guess hits the optimum exactly and the minimal cut
//!   degenerates to `{s}`.

/// Identifier of an edge added to a [`FlowNetwork`]; stable across the
/// flow computation.
pub type EdgeId = usize;

/// A mutable flow network. Create, [`add_edge`](FlowNetwork::add_edge),
/// then call [`max_flow`](FlowNetwork::max_flow) once; afterwards the cut
/// accessors are valid.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    /// Active node count (`0..n`); `adj` may hold more (recycled) slots.
    n: usize,
    /// `to[e]` — head of edge `e`; edges `e` and `e ^ 1` are a
    /// forward/backward pair.
    to: Vec<u32>,
    /// Residual capacities (mutated by the flow computation).
    cap: Vec<u128>,
    /// Initial capacities (kept to report per-edge flow).
    initial_cap: Vec<u128>,
    /// `adj[v]` — indices of edges leaving `v` (forward or residual).
    adj: Vec<Vec<u32>>,
    /// Scratch: BFS levels.
    level: Vec<u32>,
    /// Scratch: per-node DFS cursor.
    iter: Vec<usize>,
}

/// Summary of a computed minimum cut.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinCut {
    /// The max-flow value (= cut capacity).
    pub value: u128,
    /// `source_side[v]` — is node `v` on the source side of the cut?
    pub source_side: Vec<bool>,
}

const UNVISITED: u32 = u32::MAX;

impl FlowNetwork {
    /// An empty network on `n` nodes (`0..n`).
    #[must_use]
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            n,
            to: Vec::new(),
            cap: Vec::new(),
            initial_cap: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![UNVISITED; n],
            iter: vec![0; n],
        }
    }

    /// Resets to an empty network on `n` nodes **without deallocating**:
    /// edge arrays, per-node adjacency lists, and scratch buffers keep
    /// their capacity. This is what makes a [`FlowArena`]-backed decision
    /// loop allocation-free after the first call.
    ///
    /// [`FlowArena`]: crate::FlowArena
    pub fn reset_for(&mut self, n: usize) {
        self.to.clear();
        self.cap.clear();
        self.initial_cap.clear();
        // Clear every previously used list (entries beyond the new `n`
        // may be recycled by a later, larger reset).
        for list in &mut self.adj {
            list.clear();
        }
        if self.adj.len() < n {
            self.adj.resize_with(n, Vec::new);
        }
        self.level.clear();
        self.level.resize(n, UNVISITED);
        self.iter.clear();
        self.iter.resize(n, 0);
        self.n = n;
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of directed edges added (excluding the implicit residual
    /// twins).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.to.len() / 2
    }

    /// Adds a directed edge `u → v` with the given capacity and returns its
    /// id.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: u128) -> EdgeId {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        let id = self.to.len();
        self.to.push(v as u32);
        self.cap.push(cap);
        self.initial_cap.push(cap);
        self.adj[u].push(id as u32);
        self.to.push(u as u32);
        self.cap.push(0);
        self.initial_cap.push(0);
        self.adj[v].push(id as u32 + 1);
        id
    }

    /// Flow currently routed through edge `id` (valid after
    /// [`max_flow`](FlowNetwork::max_flow)).
    #[must_use]
    pub fn edge_flow(&self, id: EdgeId) -> u128 {
        self.initial_cap[id] - self.cap[id]
    }

    /// Computes the maximum `s → t` flow (Dinic: repeated BFS level graphs
    /// plus blocking flows). `O(V²E)` worst case, far faster on the
    /// unit-ish networks the DDS search builds. The blocking-flow phase is
    /// iterative (explicit path stack), so arbitrarily long augmenting
    /// paths cannot overflow the call stack.
    ///
    /// # Panics
    /// Panics if `s == t`.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u128 {
        assert_ne!(s, t, "source and sink must differ");
        let mut flow = 0u128;
        while self.bfs_levels(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            flow = flow
                .checked_add(self.blocking_flow(s, t))
                .expect("flow value overflowed u128");
        }
        flow
    }

    fn bfs_levels(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = UNVISITED);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s as u32);
        while let Some(u) = queue.pop_front() {
            for &e in &self.adj[u as usize] {
                let v = self.to[e as usize];
                if self.cap[e as usize] > 0 && self.level[v as usize] == UNVISITED {
                    self.level[v as usize] = self.level[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        self.level[t] != UNVISITED
    }

    /// One blocking flow in the current level graph: repeated
    /// advance/retreat along an explicit edge-path stack.
    fn blocking_flow(&mut self, s: usize, t: usize) -> u128 {
        let mut total = 0u128;
        let mut path: Vec<usize> = Vec::new();
        loop {
            let u = path.last().map_or(s, |&e| self.to[e] as usize);
            if u == t {
                // Augment by the bottleneck, then retreat to just before
                // the first saturated edge.
                let bottleneck = path
                    .iter()
                    .map(|&e| self.cap[e])
                    .min()
                    .expect("non-empty path");
                total += bottleneck;
                for &e in &path {
                    self.cap[e] -= bottleneck;
                    self.cap[e ^ 1] += bottleneck;
                }
                let cut = path
                    .iter()
                    .position(|&e| self.cap[e] == 0)
                    .expect("some edge saturates at the bottleneck");
                path.truncate(cut);
                continue;
            }
            // Advance along the next admissible edge, if any.
            let mut advanced = false;
            while self.iter[u] < self.adj[u].len() {
                let e = self.adj[u][self.iter[u]] as usize;
                let v = self.to[e] as usize;
                if self.cap[e] > 0 && self.level[v] == self.level[u] + 1 {
                    path.push(e);
                    advanced = true;
                    break;
                }
                self.iter[u] += 1;
            }
            if advanced {
                continue;
            }
            if u == s {
                return total;
            }
            // Dead end: remove u from the level graph and step back.
            self.level[u] = UNVISITED;
            let e = path.pop().expect("non-source dead end has a path edge");
            let tail = self.to[e ^ 1] as usize;
            self.iter[tail] += 1;
        }
    }

    /// The **minimal** min-cut source side: nodes reachable from `s` in the
    /// residual graph. Call after [`max_flow`](FlowNetwork::max_flow).
    #[must_use]
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            for &e in &self.adj[u] {
                let v = self.to[e as usize] as usize;
                if self.cap[e as usize] > 0 && !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// The **maximal** min-cut source side: the complement of the nodes
    /// that can reach `t` in the residual graph. Call after
    /// [`max_flow`](FlowNetwork::max_flow).
    #[must_use]
    pub fn max_cut_source_side(&self, t: usize) -> Vec<bool> {
        // v reaches t iff some residual edge v → w leads to a reaching w.
        // Walk backwards from t: the residual edge v → w corresponds to the
        // stored pair (e at w points to v, with cap[e ^ 1] > 0).
        let mut reaches_t = vec![false; self.n];
        let mut stack = vec![t];
        reaches_t[t] = true;
        while let Some(w) = stack.pop() {
            for &e in &self.adj[w] {
                let v = self.to[e as usize] as usize;
                if self.cap[(e ^ 1) as usize] > 0 && !reaches_t[v] {
                    reaches_t[v] = true;
                    stack.push(v);
                }
            }
        }
        reaches_t.iter().map(|&r| !r).collect()
    }

    /// Convenience: max flow plus the minimal source side.
    pub fn min_cut(&mut self, s: usize, t: usize) -> MinCut {
        let value = self.max_flow(s, t);
        MinCut {
            value,
            source_side: self.min_cut_source_side(s),
        }
    }

    /// Capacity of the cut induced by `source_side` (for verification:
    /// equals the max flow iff the side is a min cut).
    #[must_use]
    pub fn cut_capacity(&self, source_side: &[bool]) -> u128 {
        let mut total = 0u128;
        for u in 0..self.n {
            if !source_side[u] {
                continue;
            }
            for &e in &self.adj[u] {
                let e = e as usize;
                // Only original forward edges (even index) carry capacity
                // out of the cut.
                if e.is_multiple_of(2) && !source_side[self.to[e] as usize] {
                    total += self.initial_cap[e];
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic CLRS example network (max flow 23).
    fn clrs() -> FlowNetwork {
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16);
        net.add_edge(0, 2, 13);
        net.add_edge(1, 2, 10);
        net.add_edge(2, 1, 4);
        net.add_edge(1, 3, 12);
        net.add_edge(3, 2, 9);
        net.add_edge(2, 4, 14);
        net.add_edge(4, 3, 7);
        net.add_edge(3, 5, 20);
        net.add_edge(4, 5, 4);
        net
    }

    #[test]
    fn clrs_max_flow() {
        let mut net = clrs();
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn min_cut_value_matches_flow() {
        let mut net = clrs();
        let cut = net.min_cut(0, 5);
        assert_eq!(cut.value, 23);
        assert_eq!(net.cut_capacity(&cut.source_side), 23);
        assert!(cut.source_side[0]);
        assert!(!cut.source_side[5]);
    }

    #[test]
    fn maximal_cut_is_a_min_cut_and_contains_minimal() {
        let mut net = clrs();
        let flow = net.max_flow(0, 5);
        let min_side = net.min_cut_source_side(0);
        let max_side = net.max_cut_source_side(5);
        assert_eq!(net.cut_capacity(&max_side), flow);
        for v in 0..6 {
            assert!(!min_side[v] || max_side[v], "minimal ⊆ maximal at node {v}");
        }
    }

    #[test]
    fn disconnected_sink_gives_zero_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5);
        net.add_edge(2, 3, 5);
        assert_eq!(net.max_flow(0, 3), 0);
        let side = net.min_cut_source_side(0);
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 1, 4);
        assert_eq!(net.max_flow(0, 1), 7);
    }

    #[test]
    fn capacities_beyond_u64() {
        let big = u128::from(u64::MAX) * 8;
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, big);
        net.add_edge(1, 2, big / 2);
        assert_eq!(net.max_flow(0, 2), big / 2);
    }

    #[test]
    fn edge_flow_reporting() {
        let mut net = FlowNetwork::new(3);
        let a = net.add_edge(0, 1, 10);
        let b = net.add_edge(1, 2, 4);
        assert_eq!(net.max_flow(0, 2), 4);
        assert_eq!(net.edge_flow(a), 4);
        assert_eq!(net.edge_flow(b), 4);
    }

    #[test]
    fn zero_capacity_edges_are_inert() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 0);
        net.add_edge(1, 2, 9);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn boundary_recovery_shape() {
        // Two disjoint augmenting paths; at saturation, both the minimal
        // and maximal cuts are valid min cuts.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(2, 3, 1);
        let flow = net.max_flow(0, 3);
        assert_eq!(flow, 2);
        let min_side = net.min_cut_source_side(0);
        let max_side = net.max_cut_source_side(3);
        assert_eq!(net.cut_capacity(&min_side), 2);
        assert_eq!(net.cut_capacity(&max_side), 2);
    }

    #[test]
    fn reset_for_recycles_buffers_and_matches_fresh() {
        // Run CLRS, reset to a smaller network, then to a bigger one: every
        // answer must match a freshly allocated network.
        let mut net = clrs();
        assert_eq!(net.max_flow(0, 5), 23);

        net.reset_for(3);
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_edges(), 0);
        net.add_edge(0, 1, 10);
        net.add_edge(1, 2, 4);
        assert_eq!(net.max_flow(0, 2), 4);
        assert_eq!(net.min_cut_source_side(0), vec![true, true, false]);

        net.reset_for(6);
        let mut fresh = clrs();
        // Rebuild CLRS into the recycled buffers.
        for (u, v, c) in [
            (0, 1, 16),
            (0, 2, 13),
            (1, 2, 10),
            (2, 1, 4),
            (1, 3, 12),
            (3, 2, 9),
            (2, 4, 14),
            (4, 3, 7),
            (3, 5, 20),
            (4, 5, 4),
        ] {
            net.add_edge(u, v, c);
        }
        assert_eq!(net.max_flow(0, 5), fresh.max_flow(0, 5));
        assert_eq!(net.min_cut_source_side(0), fresh.min_cut_source_side(0));
        assert_eq!(net.max_cut_source_side(5), fresh.max_cut_source_side(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reset_shrinks_the_valid_node_range() {
        let mut net = FlowNetwork::new(6);
        net.reset_for(2);
        let _ = net.add_edge(0, 4, 1); // 4 was valid before the reset
    }

    #[test]
    #[should_panic(expected = "source and sink must differ")]
    fn same_source_sink_rejected() {
        let mut net = FlowNetwork::new(2);
        let _ = net.max_flow(1, 1);
    }

    #[test]
    fn very_long_path_does_not_overflow_the_stack() {
        // A 200k-node chain: the recursive formulation would blow the call
        // stack here; the iterative blocking flow must handle it.
        let n = 200_000;
        let mut net = FlowNetwork::new(n);
        for v in 0..n - 1 {
            net.add_edge(v, v + 1, 3);
        }
        assert_eq!(net.max_flow(0, n - 1), 3);
        let side = net.min_cut_source_side(0);
        assert!(side[0]);
        assert!(!side[n - 1]);
    }

    #[test]
    fn multiple_augmenting_paths_within_one_level_graph() {
        // Diamond with shared middle: blocking flow must find both paths
        // without a new BFS.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 5);
        net.add_edge(0, 2, 5);
        net.add_edge(1, 3, 5);
        net.add_edge(2, 3, 5);
        net.add_edge(3, 4, 7);
        net.add_edge(4, 5, 7);
        assert_eq!(net.max_flow(0, 5), 7);
    }
}
