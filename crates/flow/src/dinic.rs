//! Dinic's maximum-flow algorithm over `u128` capacities.
//!
//! The exact DDS search scales its rational capacities to integers; with
//! ratios up to `n` and guess denominators up to `n(a+b)` the products need
//! far more than 64 bits, so the arithmetic is `u128` throughout (checked:
//! overflow panics loudly instead of corrupting a decision).
//!
//! Besides the flow value, the DDS search needs **both** canonical min
//! cuts:
//!
//! * the *minimal* source side (BFS from `s` in the residual graph) — the
//!   smallest maximizer of the cut objective;
//! * the *maximal* source side (complement of the set that reaches `t` in
//!   the residual graph) — required to recover an optimal pair when the
//!   binary-search guess hits the optimum exactly and the minimal cut
//!   degenerates to `{s}`.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::executor::FlowExecutor;

/// Identifier of an edge added to a [`FlowNetwork`]; stable across the
/// flow computation.
pub type EdgeId = usize;

/// Networks below this many edges always take the serial Dinic path in
/// [`FlowNetwork::max_flow_with`]: per-edge locking and fork/join barriers
/// only pay for themselves once the level graphs are wide enough to keep
/// several workers busy between barriers.
pub const PARALLEL_EDGE_THRESHOLD: usize = 4096;

/// A mutable flow network. Create, [`add_edge`](FlowNetwork::add_edge),
/// then call [`max_flow`](FlowNetwork::max_flow) once; afterwards the cut
/// accessors are valid.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    /// Active node count (`0..n`); `adj` may hold more (recycled) slots.
    n: usize,
    /// `to[e]` — head of edge `e`; edges `e` and `e ^ 1` are a
    /// forward/backward pair.
    to: Vec<u32>,
    /// Residual capacities (mutated by the flow computation).
    cap: Vec<u128>,
    /// Initial capacities (kept to report per-edge flow).
    initial_cap: Vec<u128>,
    /// `adj[v]` — indices of edges leaving `v` (forward or residual).
    adj: Vec<Vec<u32>>,
    /// Scratch: BFS levels.
    level: Vec<u32>,
    /// Scratch: per-node DFS cursor.
    iter: Vec<usize>,
}

/// Summary of a computed minimum cut.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinCut {
    /// The max-flow value (= cut capacity).
    pub value: u128,
    /// `source_side[v]` — is node `v` on the source side of the cut?
    pub source_side: Vec<bool>,
}

const UNVISITED: u32 = u32::MAX;

// The atomic view below relies on `AtomicU32` and `u32` sharing layout
// (guaranteed size/bit-validity; alignment checked here for the platform).
const _: () = assert!(
    std::mem::size_of::<AtomicU32>() == 4 && std::mem::align_of::<AtomicU32>() == 4,
    "AtomicU32 must be layout-compatible with u32"
);

/// Reborrows a level array as atomics for the concurrent phases. Sound:
/// same layout (asserted above), and the `&mut` proves exclusive access,
/// which the atomic view then subdivides.
fn atomic_u32_view(xs: &mut [u32]) -> &[AtomicU32] {
    unsafe { &*(std::ptr::from_mut::<[u32]>(xs) as *const [AtomicU32]) }
}

/// Reborrows the capacity array as unsafe cells. Sound: `UnsafeCell<T>`
/// has the same in-memory representation as `T`, and every access goes
/// through [`CapTable`]'s per-pair locks.
fn cell_view(xs: &mut [u128]) -> &[UnsafeCell<u128>] {
    unsafe { &*(std::ptr::from_mut::<[u128]>(xs) as *const [UnsafeCell<u128>]) }
}

/// Residual capacities behind per-edge-pair spinlocks — the shared-state
/// core of the concurrent blocking flow. `u128` loads and stores are not
/// atomic on any mainstream target, so *every* access (even reads) takes
/// the pair's lock; the sections are a handful of instructions, which is
/// why a spinlock beats a mutex here.
struct CapTable<'a> {
    cells: &'a [UnsafeCell<u128>],
    /// One lock per forward/backward pair: `locks[e >> 1]` guards both
    /// `cells[e]` and `cells[e ^ 1]`.
    locks: &'a [AtomicBool],
}

// Safety: all cell access is guarded by the corresponding pair lock.
unsafe impl Sync for CapTable<'_> {}

impl CapTable<'_> {
    fn lock(&self, pair: usize) {
        while self.locks[pair]
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
    }

    fn unlock(&self, pair: usize) {
        self.locks[pair].store(false, Ordering::Release);
    }

    /// Locked read of one residual capacity (a guiding value only — any
    /// decision taken on it is re-validated under [`augment`]'s full-path
    /// locks before flow moves).
    ///
    /// [`augment`]: CapTable::augment
    fn read(&self, e: usize) -> u128 {
        let pair = e >> 1;
        self.lock(pair);
        let v = unsafe { *self.cells[e].get() };
        self.unlock(pair);
        v
    }

    /// Atomically augments along `path` (edge ids, source to sink): locks
    /// every pair in ascending index order (two concurrent augmenters
    /// therefore never deadlock), re-computes the bottleneck under the
    /// locks, and commits it. Returns the units pushed (0 when another
    /// worker saturated an edge first) and the position of the first
    /// now-saturated edge — the caller truncates its path there, exactly
    /// like the serial retreat.
    fn augment(&self, path: &[usize]) -> (u128, usize) {
        let mut pairs: Vec<usize> = path.iter().map(|&e| e >> 1).collect();
        pairs.sort_unstable();
        debug_assert!(pairs.windows(2).all(|w| w[0] != w[1]), "distinct pairs");
        for &p in &pairs {
            self.lock(p);
        }
        let bottleneck = path
            .iter()
            .map(|&e| unsafe { *self.cells[e].get() })
            .min()
            .expect("non-empty path");
        let cut = if bottleneck == 0 {
            path.iter()
                .position(|&e| unsafe { *self.cells[e].get() } == 0)
                .expect("a zero-capacity edge exists")
        } else {
            for &e in path {
                unsafe {
                    *self.cells[e].get() -= bottleneck;
                    *self.cells[e ^ 1].get() += bottleneck;
                }
            }
            path.iter()
                .position(|&e| unsafe { *self.cells[e].get() } == 0)
                .expect("some edge saturates at the bottleneck")
        };
        for &p in &pairs {
            self.unlock(p);
        }
        (bottleneck, cut)
    }
}

impl FlowNetwork {
    /// An empty network on `n` nodes (`0..n`).
    #[must_use]
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            n,
            to: Vec::new(),
            cap: Vec::new(),
            initial_cap: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![UNVISITED; n],
            iter: vec![0; n],
        }
    }

    /// Resets to an empty network on `n` nodes **without deallocating**:
    /// edge arrays, per-node adjacency lists, and scratch buffers keep
    /// their capacity. This is what makes a [`FlowArena`]-backed decision
    /// loop allocation-free after the first call.
    ///
    /// [`FlowArena`]: crate::FlowArena
    pub fn reset_for(&mut self, n: usize) {
        self.to.clear();
        self.cap.clear();
        self.initial_cap.clear();
        // Clear every previously used list (entries beyond the new `n`
        // may be recycled by a later, larger reset).
        for list in &mut self.adj {
            list.clear();
        }
        if self.adj.len() < n {
            self.adj.resize_with(n, Vec::new);
        }
        self.level.clear();
        self.level.resize(n, UNVISITED);
        self.iter.clear();
        self.iter.resize(n, 0);
        self.n = n;
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of directed edges added (excluding the implicit residual
    /// twins).
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.to.len() / 2
    }

    /// Adds a directed edge `u → v` with the given capacity and returns its
    /// id.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: u128) -> EdgeId {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        let id = self.to.len();
        self.to.push(v as u32);
        self.cap.push(cap);
        self.initial_cap.push(cap);
        self.adj[u].push(id as u32);
        self.to.push(u as u32);
        self.cap.push(0);
        self.initial_cap.push(0);
        self.adj[v].push(id as u32 + 1);
        id
    }

    /// Flow currently routed through edge `id` (valid after
    /// [`max_flow`](FlowNetwork::max_flow)).
    #[must_use]
    pub fn edge_flow(&self, id: EdgeId) -> u128 {
        self.initial_cap[id] - self.cap[id]
    }

    /// Computes the maximum `s → t` flow (Dinic: repeated BFS level graphs
    /// plus blocking flows). `O(V²E)` worst case, far faster on the
    /// unit-ish networks the DDS search builds. The blocking-flow phase is
    /// iterative (explicit path stack), so arbitrarily long augmenting
    /// paths cannot overflow the call stack.
    ///
    /// # Panics
    /// Panics if `s == t`.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u128 {
        assert_ne!(s, t, "source and sink must differ");
        let mut flow = 0u128;
        while self.bfs_levels(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            flow = flow
                .checked_add(self.blocking_flow(s, t))
                .expect("flow value overflowed u128");
        }
        flow
    }

    /// [`max_flow`](FlowNetwork::max_flow) with the Dinic phases spread
    /// over `exec`'s workers: parallel BFS level construction (lock-free
    /// CAS discovery, level-synchronous rounds — the level array is
    /// *identical* to the serial BFS) and a concurrent blocking flow in
    /// which workers claim disjoint source edges of the level graph and
    /// push augmenting paths guarded by per-edge locks.
    ///
    /// Small networks (fewer than [`PARALLEL_EDGE_THRESHOLD`] edges) and
    /// serial executors take the exact serial path. The returned flow
    /// value is the (unique) max-flow value either way, and because **the
    /// minimal and maximal min-cut sides are invariant across all maximum
    /// flows**, the cut accessors afterwards return bit-identical answers
    /// to a serial run — only the per-edge flow decomposition may differ.
    ///
    /// # Panics
    /// Panics if `s == t`.
    pub fn max_flow_with(&mut self, s: usize, t: usize, exec: &dyn FlowExecutor) -> u128 {
        let width = exec.width().min(self.adj[s].len().max(1));
        if width <= 1 || self.num_edges() < PARALLEL_EDGE_THRESHOLD {
            return self.max_flow(s, t);
        }
        assert_ne!(s, t, "source and sink must differ");
        // Per-pair locks (edge `e` and its residual twin `e ^ 1` share one
        // lock) and per-worker DFS cursors, allocated once per call and
        // reused across phases.
        let locks: Vec<AtomicBool> = (0..self.to.len() / 2)
            .map(|_| AtomicBool::new(false))
            .collect();
        let cursors: Vec<Mutex<Vec<usize>>> = (0..width)
            .map(|_| Mutex::new(vec![0usize; self.adj.len()]))
            .collect();
        let mut flow = 0u128;
        while self.bfs_levels_parallel(s, t, exec, width) {
            let pushed = self.blocking_flow_parallel(s, t, exec, width, &locks, &cursors);
            // A BFS-reachable sink guarantees ≥ 1 unit: if no worker
            // augmented, capacities never changed during the phase, and a
            // sequentialised DFS over constant capacities finds the path.
            flow = flow
                .checked_add(pushed)
                .expect("flow value overflowed u128");
        }
        flow
    }

    /// Level-synchronous parallel BFS: each round splits the frontier over
    /// the workers, discovery is a CAS on the level slot, and rounds are
    /// joined through the executor. Levels equal the serial BFS levels
    /// exactly (BFS distance is round-invariant); only the intra-frontier
    /// order differs, which nothing observes.
    fn bfs_levels_parallel(
        &mut self,
        s: usize,
        t: usize,
        exec: &dyn FlowExecutor,
        width: usize,
    ) -> bool {
        self.level.iter_mut().for_each(|l| *l = UNVISITED);
        self.level[s] = 0;
        let levels = atomic_u32_view(&mut self.level);
        let (to, cap, adj) = (&self.to, &self.cap, &self.adj);
        let mut frontier: Vec<u32> = vec![s as u32];
        let mut depth = 0u32;
        while !frontier.is_empty() {
            depth += 1;
            // One output slot per worker; merged after the join.
            let nexts: Vec<Mutex<Vec<u32>>> = (0..width).map(|_| Mutex::new(Vec::new())).collect();
            let chunk = frontier.len().div_ceil(width);
            let frontier_ref = &frontier;
            exec.run(width, &|w| {
                let Some(mine) = frontier_ref.chunks(chunk).nth(w) else {
                    return;
                };
                let mut out = Vec::new();
                for &u in mine {
                    for &e in &adj[u as usize] {
                        let v = to[e as usize] as usize;
                        // `cap` is not mutated during the BFS phase, so the
                        // plain read races with nothing.
                        if cap[e as usize] > 0
                            && levels[v]
                                .compare_exchange(
                                    UNVISITED,
                                    depth,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                        {
                            out.push(v as u32);
                        }
                    }
                }
                *nexts[w].lock().expect("bfs slot poisoned") = out;
            });
            frontier.clear();
            for slot in nexts {
                frontier.extend(slot.into_inner().expect("bfs slot poisoned"));
            }
        }
        self.level[t] != UNVISITED
    }

    /// One concurrent blocking-flow phase. Workers claim disjoint source
    /// edges of the level graph from a shared cursor and run independent
    /// advance/retreat walks guided by the (shared, atomically read)
    /// levels; every capacity access goes through the per-pair locks, and
    /// an augmentation locks its whole path (in pair-index order, so two
    /// augmenters can never deadlock) and re-validates the bottleneck
    /// before committing — so the level discipline is purely a heuristic
    /// and every committed augmentation is a genuine residual `s → t`
    /// push. Admissible-direction capacities only decrease within a phase
    /// (augmenting adds capacity to the *reverse*, non-admissible twin),
    /// which is what makes cursor skipping and the shared dead-end marks
    /// (`level[u] := UNVISITED`) sound.
    fn blocking_flow_parallel(
        &mut self,
        s: usize,
        t: usize,
        exec: &dyn FlowExecutor,
        width: usize,
        locks: &[AtomicBool],
        cursors: &[Mutex<Vec<usize>>],
    ) -> u128 {
        let levels = atomic_u32_view(&mut self.level);
        let caps = CapTable {
            cells: cell_view(&mut self.cap),
            locks,
        };
        let (to, adj) = (&self.to, &self.adj);
        let src_edges: &[u32] = &adj[s];
        let src_cursor = AtomicUsize::new(0);
        let total = Mutex::new(0u128);
        let caps_ref = &caps;
        exec.run(width, &|w| {
            let mut iters = cursors[w].lock().expect("cursor slot poisoned");
            iters.iter_mut().for_each(|i| *i = 0);
            let mut path: Vec<usize> = Vec::new();
            let mut pushed = 0u128;
            'walk: loop {
                if path.is_empty() {
                    // Claim the next unexplored start of the level graph.
                    loop {
                        let k = src_cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&e) = src_edges.get(k) else {
                            break 'walk;
                        };
                        let e = e as usize;
                        let v = to[e] as usize;
                        if levels[v].load(Ordering::Relaxed) == 1 && caps_ref.read(e) > 0 {
                            path.push(e);
                            break;
                        }
                    }
                }
                let u = to[*path.last().expect("non-empty path")] as usize;
                if u == t {
                    let (bottleneck, cut) = caps_ref.augment(&path);
                    pushed = pushed
                        .checked_add(bottleneck)
                        .expect("phase flow overflowed u128");
                    path.truncate(cut);
                    continue;
                }
                // Advance along the next admissible edge, if any. A node
                // another worker already dead-marked (level == UNVISITED)
                // is retreated from immediately — without the guard the
                // `lu + 1` comparison would wrap to 0 and walk into `s`.
                let lu = levels[u].load(Ordering::Relaxed);
                let mut advanced = false;
                while lu != UNVISITED && iters[u] < adj[u].len() {
                    let e = adj[u][iters[u]] as usize;
                    let v = to[e] as usize;
                    if levels[v].load(Ordering::Relaxed) == lu + 1 && caps_ref.read(e) > 0 {
                        path.push(e);
                        advanced = true;
                        break;
                    }
                    iters[u] += 1;
                }
                if advanced {
                    continue;
                }
                // Dead end: remove u from the level graph for everyone and
                // step back (to the claim loop when the path empties).
                levels[u].store(UNVISITED, Ordering::Relaxed);
                let e = path.pop().expect("non-empty path");
                if let Some(&prev) = path.last() {
                    debug_assert_eq!(to[prev] as usize, to[e ^ 1] as usize);
                }
                let tail = to[e ^ 1] as usize;
                if tail != s {
                    iters[tail] += 1;
                }
            }
            *total.lock().expect("total poisoned") += pushed;
        });
        total.into_inner().expect("total poisoned")
    }

    fn bfs_levels(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = UNVISITED);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s as u32);
        while let Some(u) = queue.pop_front() {
            for &e in &self.adj[u as usize] {
                let v = self.to[e as usize];
                if self.cap[e as usize] > 0 && self.level[v as usize] == UNVISITED {
                    self.level[v as usize] = self.level[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        self.level[t] != UNVISITED
    }

    /// One blocking flow in the current level graph: repeated
    /// advance/retreat along an explicit edge-path stack.
    fn blocking_flow(&mut self, s: usize, t: usize) -> u128 {
        let mut total = 0u128;
        let mut path: Vec<usize> = Vec::new();
        loop {
            let u = path.last().map_or(s, |&e| self.to[e] as usize);
            if u == t {
                // Augment by the bottleneck, then retreat to just before
                // the first saturated edge.
                let bottleneck = path
                    .iter()
                    .map(|&e| self.cap[e])
                    .min()
                    .expect("non-empty path");
                total += bottleneck;
                for &e in &path {
                    self.cap[e] -= bottleneck;
                    self.cap[e ^ 1] += bottleneck;
                }
                let cut = path
                    .iter()
                    .position(|&e| self.cap[e] == 0)
                    .expect("some edge saturates at the bottleneck");
                path.truncate(cut);
                continue;
            }
            // Advance along the next admissible edge, if any.
            let mut advanced = false;
            while self.iter[u] < self.adj[u].len() {
                let e = self.adj[u][self.iter[u]] as usize;
                let v = self.to[e] as usize;
                if self.cap[e] > 0 && self.level[v] == self.level[u] + 1 {
                    path.push(e);
                    advanced = true;
                    break;
                }
                self.iter[u] += 1;
            }
            if advanced {
                continue;
            }
            if u == s {
                return total;
            }
            // Dead end: remove u from the level graph and step back.
            self.level[u] = UNVISITED;
            let e = path.pop().expect("non-source dead end has a path edge");
            let tail = self.to[e ^ 1] as usize;
            self.iter[tail] += 1;
        }
    }

    /// The **minimal** min-cut source side: nodes reachable from `s` in the
    /// residual graph. Call after [`max_flow`](FlowNetwork::max_flow).
    #[must_use]
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            for &e in &self.adj[u] {
                let v = self.to[e as usize] as usize;
                if self.cap[e as usize] > 0 && !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// The **maximal** min-cut source side: the complement of the nodes
    /// that can reach `t` in the residual graph. Call after
    /// [`max_flow`](FlowNetwork::max_flow).
    #[must_use]
    pub fn max_cut_source_side(&self, t: usize) -> Vec<bool> {
        // v reaches t iff some residual edge v → w leads to a reaching w.
        // Walk backwards from t: the residual edge v → w corresponds to the
        // stored pair (e at w points to v, with cap[e ^ 1] > 0).
        let mut reaches_t = vec![false; self.n];
        let mut stack = vec![t];
        reaches_t[t] = true;
        while let Some(w) = stack.pop() {
            for &e in &self.adj[w] {
                let v = self.to[e as usize] as usize;
                if self.cap[(e ^ 1) as usize] > 0 && !reaches_t[v] {
                    reaches_t[v] = true;
                    stack.push(v);
                }
            }
        }
        reaches_t.iter().map(|&r| !r).collect()
    }

    /// Convenience: max flow plus the minimal source side.
    pub fn min_cut(&mut self, s: usize, t: usize) -> MinCut {
        let value = self.max_flow(s, t);
        MinCut {
            value,
            source_side: self.min_cut_source_side(s),
        }
    }

    /// Capacity of the cut induced by `source_side` (for verification:
    /// equals the max flow iff the side is a min cut).
    #[must_use]
    pub fn cut_capacity(&self, source_side: &[bool]) -> u128 {
        let mut total = 0u128;
        for u in 0..self.n {
            if !source_side[u] {
                continue;
            }
            for &e in &self.adj[u] {
                let e = e as usize;
                // Only original forward edges (even index) carry capacity
                // out of the cut.
                if e.is_multiple_of(2) && !source_side[self.to[e] as usize] {
                    total += self.initial_cap[e];
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic CLRS example network (max flow 23).
    fn clrs() -> FlowNetwork {
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16);
        net.add_edge(0, 2, 13);
        net.add_edge(1, 2, 10);
        net.add_edge(2, 1, 4);
        net.add_edge(1, 3, 12);
        net.add_edge(3, 2, 9);
        net.add_edge(2, 4, 14);
        net.add_edge(4, 3, 7);
        net.add_edge(3, 5, 20);
        net.add_edge(4, 5, 4);
        net
    }

    #[test]
    fn clrs_max_flow() {
        let mut net = clrs();
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn min_cut_value_matches_flow() {
        let mut net = clrs();
        let cut = net.min_cut(0, 5);
        assert_eq!(cut.value, 23);
        assert_eq!(net.cut_capacity(&cut.source_side), 23);
        assert!(cut.source_side[0]);
        assert!(!cut.source_side[5]);
    }

    #[test]
    fn maximal_cut_is_a_min_cut_and_contains_minimal() {
        let mut net = clrs();
        let flow = net.max_flow(0, 5);
        let min_side = net.min_cut_source_side(0);
        let max_side = net.max_cut_source_side(5);
        assert_eq!(net.cut_capacity(&max_side), flow);
        for v in 0..6 {
            assert!(!min_side[v] || max_side[v], "minimal ⊆ maximal at node {v}");
        }
    }

    #[test]
    fn disconnected_sink_gives_zero_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5);
        net.add_edge(2, 3, 5);
        assert_eq!(net.max_flow(0, 3), 0);
        let side = net.min_cut_source_side(0);
        assert_eq!(side, vec![true, true, false, false]);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 3);
        net.add_edge(0, 1, 4);
        assert_eq!(net.max_flow(0, 1), 7);
    }

    #[test]
    fn capacities_beyond_u64() {
        let big = u128::from(u64::MAX) * 8;
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, big);
        net.add_edge(1, 2, big / 2);
        assert_eq!(net.max_flow(0, 2), big / 2);
    }

    #[test]
    fn edge_flow_reporting() {
        let mut net = FlowNetwork::new(3);
        let a = net.add_edge(0, 1, 10);
        let b = net.add_edge(1, 2, 4);
        assert_eq!(net.max_flow(0, 2), 4);
        assert_eq!(net.edge_flow(a), 4);
        assert_eq!(net.edge_flow(b), 4);
    }

    #[test]
    fn zero_capacity_edges_are_inert() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 0);
        net.add_edge(1, 2, 9);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn boundary_recovery_shape() {
        // Two disjoint augmenting paths; at saturation, both the minimal
        // and maximal cuts are valid min cuts.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(2, 3, 1);
        let flow = net.max_flow(0, 3);
        assert_eq!(flow, 2);
        let min_side = net.min_cut_source_side(0);
        let max_side = net.max_cut_source_side(3);
        assert_eq!(net.cut_capacity(&min_side), 2);
        assert_eq!(net.cut_capacity(&max_side), 2);
    }

    #[test]
    fn reset_for_recycles_buffers_and_matches_fresh() {
        // Run CLRS, reset to a smaller network, then to a bigger one: every
        // answer must match a freshly allocated network.
        let mut net = clrs();
        assert_eq!(net.max_flow(0, 5), 23);

        net.reset_for(3);
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_edges(), 0);
        net.add_edge(0, 1, 10);
        net.add_edge(1, 2, 4);
        assert_eq!(net.max_flow(0, 2), 4);
        assert_eq!(net.min_cut_source_side(0), vec![true, true, false]);

        net.reset_for(6);
        let mut fresh = clrs();
        // Rebuild CLRS into the recycled buffers.
        for (u, v, c) in [
            (0, 1, 16),
            (0, 2, 13),
            (1, 2, 10),
            (2, 1, 4),
            (1, 3, 12),
            (3, 2, 9),
            (2, 4, 14),
            (4, 3, 7),
            (3, 5, 20),
            (4, 5, 4),
        ] {
            net.add_edge(u, v, c);
        }
        assert_eq!(net.max_flow(0, 5), fresh.max_flow(0, 5));
        assert_eq!(net.min_cut_source_side(0), fresh.min_cut_source_side(0));
        assert_eq!(net.max_cut_source_side(5), fresh.max_cut_source_side(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reset_shrinks_the_valid_node_range() {
        let mut net = FlowNetwork::new(6);
        net.reset_for(2);
        let _ = net.add_edge(0, 4, 1); // 4 was valid before the reset
    }

    #[test]
    #[should_panic(expected = "source and sink must differ")]
    fn same_source_sink_rejected() {
        let mut net = FlowNetwork::new(2);
        let _ = net.max_flow(1, 1);
    }

    #[test]
    fn very_long_path_does_not_overflow_the_stack() {
        // A 200k-node chain: the recursive formulation would blow the call
        // stack here; the iterative blocking flow must handle it.
        let n = 200_000;
        let mut net = FlowNetwork::new(n);
        for v in 0..n - 1 {
            net.add_edge(v, v + 1, 3);
        }
        assert_eq!(net.max_flow(0, n - 1), 3);
        let side = net.min_cut_source_side(0);
        assert!(side[0]);
        assert!(!side[n - 1]);
    }

    /// A genuinely multi-threaded executor for the tests (scoped threads,
    /// one per task) — the host may be single-core, so this is what makes
    /// the concurrency paths actually interleave under test.
    struct ScopedExecutor(usize);

    impl crate::FlowExecutor for ScopedExecutor {
        fn width(&self) -> usize {
            self.0
        }

        fn run(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
            std::thread::scope(|scope| {
                for i in 0..tasks {
                    scope.spawn(move || f(i));
                }
            });
        }
    }

    /// Deterministic xorshift, to build networks without external deps.
    fn rng(seed: u64) -> impl FnMut(u64) -> u64 {
        let mut state = seed | 1;
        move |bound| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % bound
        }
    }

    /// A layered random network big enough to cross
    /// [`PARALLEL_EDGE_THRESHOLD`], shaped like the DDS decision networks
    /// (source fan-out, wide middle, sink fan-in).
    fn layered_network(seed: u64, layer: usize) -> FlowNetwork {
        let mut next = rng(seed);
        let n = 2 + 2 * layer;
        let mut net = FlowNetwork::new(n);
        let a = |i: usize| 2 + i;
        let b = |j: usize| 2 + layer + j;
        for i in 0..layer {
            net.add_edge(0, a(i), u128::from(1 + next(50)));
            net.add_edge(b(i), 1, u128::from(1 + next(50)));
        }
        // ~6 random middle edges per left node, plus some shortcuts.
        for i in 0..layer {
            for _ in 0..6 {
                net.add_edge(
                    a(i),
                    b(next(layer as u64) as usize),
                    u128::from(1 + next(20)),
                );
            }
            if next(4) == 0 {
                net.add_edge(a(i), 1, u128::from(1 + next(10)));
            }
        }
        assert!(net.num_edges() >= PARALLEL_EDGE_THRESHOLD);
        net
    }

    #[test]
    fn parallel_matches_serial_on_layered_networks() {
        for seed in [1u64, 7, 42, 1234] {
            let mut serial = layered_network(seed, 600);
            let mut parallel = serial.clone();
            let flow = serial.max_flow(0, 1);
            for width in [2, 3, 8] {
                let mut net = parallel.clone();
                let got = net.max_flow_with(0, 1, &ScopedExecutor(width));
                assert_eq!(got, flow, "seed={seed} width={width}");
                // Min-cut sides are unique across max flows — demand
                // bit-identical verdicts, not just equal values.
                assert_eq!(
                    net.min_cut_source_side(0),
                    serial.min_cut_source_side(0),
                    "seed={seed} width={width}"
                );
                assert_eq!(
                    net.max_cut_source_side(1),
                    serial.max_cut_source_side(1),
                    "seed={seed} width={width}"
                );
                assert_eq!(net.cut_capacity(&net.min_cut_source_side(0)), flow);
            }
            let got = parallel.max_flow_with(0, 1, &ScopedExecutor(1));
            assert_eq!(got, flow, "width 1 must take the serial path");
        }
    }

    #[test]
    fn small_networks_take_the_serial_path_under_any_executor() {
        let mut net = clrs();
        assert_eq!(net.max_flow_with(0, 5, &ScopedExecutor(8)), 23);
        assert_eq!(net.min_cut_source_side(0), clrs_min_side());
    }

    fn clrs_min_side() -> Vec<bool> {
        let mut net = clrs();
        let _ = net.max_flow(0, 5);
        net.min_cut_source_side(0)
    }

    #[test]
    fn parallel_handles_capacities_beyond_u64() {
        // Locked u128 arithmetic must survive bottlenecks past 64 bits.
        let mut next = rng(99);
        let big = u128::from(u64::MAX) * 16;
        let layer = 1200usize;
        let mut net = FlowNetwork::new(2 + 2 * layer);
        for i in 0..layer {
            net.add_edge(0, 2 + i, big + u128::from(next(1000)));
            net.add_edge(2 + i, 2 + layer + i, big / 2 + u128::from(next(1000)));
            net.add_edge(2 + layer + i, 1, big + u128::from(next(1000)));
            net.add_edge(2 + i, 2 + layer + ((i + 1) % layer), u128::from(next(64)));
        }
        assert!(net.num_edges() >= PARALLEL_EDGE_THRESHOLD);
        let mut serial = net.clone();
        let want = serial.max_flow(0, 1);
        let got = net.max_flow_with(0, 1, &ScopedExecutor(4));
        assert_eq!(got, want);
        assert_eq!(net.min_cut_source_side(0), serial.min_cut_source_side(0));
    }

    #[test]
    fn multiple_augmenting_paths_within_one_level_graph() {
        // Diamond with shared middle: blocking flow must find both paths
        // without a new BFS.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 5);
        net.add_edge(0, 2, 5);
        net.add_edge(1, 3, 5);
        net.add_edge(2, 3, 5);
        net.add_edge(3, 4, 7);
        net.add_edge(4, 5, 7);
        assert_eq!(net.max_flow(0, 5), 7);
    }
}
