//! The executor seam between the flow kernel and whoever owns threads.
//!
//! `dds-flow` sits *below* `dds-core` in the crate graph, so it cannot
//! name the worker pool that `dds-core` builds on top of it. Instead the
//! parallel Dinic phases ([`FlowNetwork::max_flow_with`]) are written
//! against this two-method trait: "run `tasks` closures, each told its
//! index, and return when all have finished". The serial implementation
//! below is the default everywhere; `dds-core`'s persistent work-stealing
//! pool implements the trait and threads itself through the decision
//! procedure ([`decide_in_with`]), which is how per-ratio parallelism
//! reaches the flow inner loop without a dependency cycle.
//!
//! [`FlowNetwork::max_flow_with`]: crate::FlowNetwork::max_flow_with
//! [`decide_in_with`]: crate::decision::decide_in_with

/// A fork/join primitive: run `tasks` instances of `f` (each receiving its
/// task index in `0..tasks`) and return once **all** of them completed.
///
/// Implementations may run the closures on any threads in any order, but
/// must provide the usual fork/join guarantees: every index is executed
/// exactly once, all effects of the closures happen-before `run` returns,
/// and a panic in any closure propagates out of `run` (after all tasks
/// stopped).
pub trait FlowExecutor: Sync {
    /// Upper bound on how many closures can make progress simultaneously
    /// (`1` means serial). Callers use this to size task counts and to
    /// skip parallel code paths that cannot pay off.
    fn width(&self) -> usize;

    /// Executes `f(0), f(1), …, f(tasks - 1)`, possibly concurrently, and
    /// joins them all.
    fn run(&self, tasks: usize, f: &(dyn Fn(usize) + Sync));
}

/// The do-it-on-this-thread executor: `width() == 1`, tasks run in index
/// order on the caller's stack. With this executor every "parallel" code
/// path in the crate is *exactly* its serial counterpart.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialExecutor;

impl FlowExecutor for SerialExecutor {
    fn width(&self) -> usize {
        1
    }

    fn run(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        for i in 0..tasks {
            f(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_executor_runs_every_index_in_order() {
        let log = std::sync::Mutex::new(Vec::new());
        SerialExecutor.run(5, &|i| log.lock().unwrap().push(i));
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(SerialExecutor.width(), 1);
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        SerialExecutor.run(0, &|_| panic!("must not run"));
    }
}
