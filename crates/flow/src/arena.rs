//! A reusable allocation arena for [`FlowNetwork`]s.
//!
//! The exact DDS search runs thousands of flow decisions per solve, each on
//! a network whose node and edge buffers were previously thrown away and
//! reallocated. [`FlowArena`] keeps one network alive and hands it out
//! reset-but-not-deallocated ([`FlowNetwork::reset_for`]), so the steady
//! state of a ratio search performs no heap allocation in the flow layer at
//! all. The arena also counts how often reuse actually happened — the
//! `arena_reuse_hits` instrumentation that `dds-core` and `dds-stream`
//! surface in their reports.
//!
//! One arena serves one worker: the parallel ratio search gives each of its
//! threads its own arena (the buffers are the whole point — sharing them
//! would serialise the workers).

use crate::FlowNetwork;

/// Owns a recyclable [`FlowNetwork`] plus reuse counters.
#[derive(Clone, Debug, Default)]
pub struct FlowArena {
    net: Option<FlowNetwork>,
    acquires: usize,
    reuse_hits: usize,
}

impl FlowArena {
    /// An empty arena; the first [`acquire`](FlowArena::acquire) allocates.
    #[must_use]
    pub fn new() -> Self {
        FlowArena::default()
    }

    /// Returns the arena's network, emptied and sized for `n` nodes.
    ///
    /// The first call allocates; every later call recycles the existing
    /// buffers and counts as a reuse hit.
    pub fn acquire(&mut self, n: usize) -> &mut FlowNetwork {
        self.acquires += 1;
        match &mut self.net {
            Some(net) => {
                self.reuse_hits += 1;
                net.reset_for(n);
            }
            None => self.net = Some(FlowNetwork::new(n)),
        }
        self.net.as_mut().expect("populated above")
    }

    /// Total number of `acquire` calls.
    #[must_use]
    pub fn acquires(&self) -> usize {
        self.acquires
    }

    /// Number of `acquire` calls that recycled existing buffers (all but
    /// the first).
    #[must_use]
    pub fn reuse_hits(&self) -> usize {
        self.reuse_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_counts_and_reuses() {
        let mut arena = FlowArena::new();
        assert_eq!((arena.acquires(), arena.reuse_hits()), (0, 0));

        let net = arena.acquire(4);
        net.add_edge(0, 1, 5);
        net.add_edge(1, 3, 5);
        assert_eq!(net.max_flow(0, 3), 5);
        assert_eq!((arena.acquires(), arena.reuse_hits()), (1, 0));

        // Second acquire reuses: network comes back empty, counters move.
        let net = arena.acquire(3);
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_edges(), 0);
        net.add_edge(0, 2, 7);
        assert_eq!(net.max_flow(0, 2), 7);
        assert_eq!((arena.acquires(), arena.reuse_hits()), (2, 1));
    }
}
