//! Max-flow substrate for the exact DDS algorithms.
//!
//! Three layers:
//!
//! * [`dinic`] — a general-purpose Dinic's max-flow over `u128` capacities
//!   with extraction of both the minimal and the maximal min-cut source
//!   sides, plus in-place buffer recycling ([`FlowNetwork::reset_for`]);
//! * [`arena`] — [`FlowArena`], the owner of one recyclable network that
//!   makes the steady state of a ratio search allocation-free and counts
//!   `arena_reuse_hits` for the instrumentation reports;
//! * [`decision`] — the DDS-specific decision procedure: one min-cut
//!   answers "is there a pair `(S, T)` whose ratio-weighted density exceeds
//!   the guess β?", with exact rational capacities scaled to integers.
//!   [`decide_in`] draws its network from a caller-owned arena; [`decide`]
//!   is the one-shot wrapper.
//! * [`executor`] — the [`FlowExecutor`] seam through which a caller-owned
//!   thread pool reaches the Dinic inner loop
//!   ([`FlowNetwork::max_flow_with`]: parallel BFS level builds plus a
//!   concurrent blocking flow over disjoint level-graph starts), without
//!   this crate depending on whoever owns the threads. Cut verdicts are
//!   bit-identical to serial Dinic — min-cut sides are invariant across
//!   maximum flows.
//!
//! See `DESIGN.md §2.3` for the derivation of the network and the β-space
//! trick that keeps everything rational.

#![warn(missing_docs)]

pub mod arena;
pub mod decision;
pub mod dinic;
pub mod executor;

pub use arena::FlowArena;
pub use decision::{beta_of_pair, decide, decide_in, decide_in_with, Decision, DecisionStats};
pub use dinic::{EdgeId, FlowNetwork, MinCut, PARALLEL_EDGE_THRESHOLD};
pub use executor::{FlowExecutor, SerialExecutor};
