//! Max-flow substrate for the exact DDS algorithms.
//!
//! Three layers:
//!
//! * [`dinic`] — a general-purpose Dinic's max-flow over `u128` capacities
//!   with extraction of both the minimal and the maximal min-cut source
//!   sides, plus in-place buffer recycling ([`FlowNetwork::reset_for`]);
//! * [`arena`] — [`FlowArena`], the owner of one recyclable network that
//!   makes the steady state of a ratio search allocation-free and counts
//!   `arena_reuse_hits` for the instrumentation reports;
//! * [`decision`] — the DDS-specific decision procedure: one min-cut
//!   answers "is there a pair `(S, T)` whose ratio-weighted density exceeds
//!   the guess β?", with exact rational capacities scaled to integers.
//!   [`decide_in`] draws its network from a caller-owned arena; [`decide`]
//!   is the one-shot wrapper.
//!
//! See `DESIGN.md §2.3` for the derivation of the network and the β-space
//! trick that keeps everything rational.

#![warn(missing_docs)]

pub mod arena;
pub mod decision;
pub mod dinic;

pub use arena::FlowArena;
pub use decision::{beta_of_pair, decide, decide_in, Decision, DecisionStats};
pub use dinic::{EdgeId, FlowNetwork, MinCut};
