//! Max-flow substrate for the exact DDS algorithms.
//!
//! Two layers:
//!
//! * [`dinic`] — a general-purpose Dinic's max-flow over `u128` capacities
//!   with extraction of both the minimal and the maximal min-cut source
//!   sides;
//! * [`decision`] — the DDS-specific decision procedure: one min-cut
//!   answers "is there a pair `(S, T)` whose ratio-weighted density exceeds
//!   the guess β?", with exact rational capacities scaled to integers.
//!
//! See `DESIGN.md §2.3` for the derivation of the network and the β-space
//! trick that keeps everything rational.

#![warn(missing_docs)]

pub mod decision;
pub mod dinic;

pub use decision::{beta_of_pair, decide, Decision, DecisionStats};
pub use dinic::{EdgeId, FlowNetwork, MinCut};
