//! Property tests: the flow decision procedure against brute-force
//! maximisation of the weighted objective.

use dds_flow::{beta_of_pair, decide, Decision};
use dds_graph::{GraphBuilder, Pair, StMask};
use dds_num::Frac;
use proptest::prelude::*;

fn graph_strategy() -> impl Strategy<Value = dds_graph::DiGraph> {
    prop::collection::vec((0u32..7, 0u32..7), 1..24).prop_map(|edges| {
        let mut b = GraphBuilder::with_min_vertices(7);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    })
}

/// Brute-force maximum of β*(S, T) over all non-empty pairs.
fn brute_max_beta(g: &dds_graph::DiGraph, a: u64, b: u64) -> Frac {
    let n = g.n();
    let mut best = Frac::ZERO;
    for s_bits in 1u32..(1 << n) {
        for t_bits in 1u32..(1 << n) {
            let s: Vec<u32> = (0..n as u32).filter(|&v| s_bits >> v & 1 == 1).collect();
            let t: Vec<u32> = (0..n as u32).filter(|&v| t_bits >> v & 1 == 1).collect();
            let beta = beta_of_pair(g, &Pair::new(s, t), a, b);
            if beta > best {
                best = beta;
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// decide() classifies every guess correctly relative to the brute
    /// optimum: below ⇒ Exceeds with a genuinely better pair; at ⇒
    /// boundary recovery; above ⇒ clean certificate.
    #[test]
    fn decision_classifies_guesses(
        g in graph_strategy(),
        a in 1u64..4,
        b in 1u64..4,
        num in 1i128..40,
        den in 1i128..12,
    ) {
        prop_assume!(g.m() > 0);
        let alive = StMask::full(g.n());
        let best = brute_max_beta(&g, a, b);
        prop_assume!(!best.is_zero());

        // An arbitrary strictly positive guess.
        let guess = Frac::new(num, den);
        let (dec, _) = decide(&g, &alive, a, b, guess);
        match dec {
            Decision::Exceeds(pair) => {
                let beta = beta_of_pair(&g, &pair, a, b);
                prop_assert!(beta > guess, "returned pair must beat the guess");
                prop_assert!(guess < best, "Exceeds implies the guess was below β*");
            }
            Decision::Certified { boundary } => {
                prop_assert!(guess >= best, "certificate implies guess ≥ β*");
                if let Some(pair) = boundary {
                    prop_assert_eq!(beta_of_pair(&g, &pair, a, b), guess);
                    prop_assert_eq!(guess, best, "boundary pair only exists at β* exactly");
                }
            }
        }

        // Probing exactly at the optimum must recover an optimal pair.
        let (dec, _) = decide(&g, &alive, a, b, best);
        match dec {
            Decision::Certified { boundary: Some(pair) } => {
                prop_assert_eq!(beta_of_pair(&g, &pair, a, b), best);
            }
            other => {
                return Err(TestCaseError::fail(format!(
                    "expected boundary recovery at β*, got {other:?}"
                )));
            }
        }
    }
}
