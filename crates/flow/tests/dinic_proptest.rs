//! Property tests: Dinic against a naive Edmonds–Karp reference.

use dds_flow::FlowNetwork;
use proptest::prelude::*;

/// Reference max-flow: repeated BFS augmenting paths on an adjacency
/// matrix. O(VE²) but bullet-proof for tiny instances.
fn edmonds_karp(n: usize, edges: &[(usize, usize, u64)], s: usize, t: usize) -> u128 {
    let mut cap = vec![vec![0u128; n]; n];
    for &(u, v, c) in edges {
        cap[u][v] += u128::from(c);
    }
    let mut flow = 0u128;
    loop {
        // BFS for an augmenting path.
        let mut parent = vec![usize::MAX; n];
        parent[s] = s;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for v in 0..n {
                if parent[v] == usize::MAX && cap[u][v] > 0 {
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if parent[t] == usize::MAX {
            return flow;
        }
        let mut bottleneck = u128::MAX;
        let mut v = t;
        while v != s {
            let u = parent[v];
            bottleneck = bottleneck.min(cap[u][v]);
            v = u;
        }
        let mut v = t;
        while v != s {
            let u = parent[v];
            cap[u][v] -= bottleneck;
            cap[v][u] += bottleneck;
            v = u;
        }
        flow += bottleneck;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dinic's flow value equals the reference on random networks, and the
    /// reported min cut has exactly that capacity.
    #[test]
    fn dinic_matches_edmonds_karp(
        n in 2usize..9,
        edges in prop::collection::vec((0usize..8, 0usize..8, 0u64..50), 0..40),
    ) {
        let edges: Vec<(usize, usize, u64)> = edges
            .into_iter()
            .map(|(u, v, c)| (u % n, v % n, c))
            .filter(|&(u, v, _)| u != v)
            .collect();
        let (s, t) = (0, n - 1);

        let want = edmonds_karp(n, &edges, s, t);

        let mut net = FlowNetwork::new(n);
        for &(u, v, c) in &edges {
            net.add_edge(u, v, u128::from(c));
        }
        let got = net.max_flow(s, t);
        prop_assert_eq!(got, want);

        let min_side = net.min_cut_source_side(s);
        prop_assert!(min_side[s]);
        prop_assert!(!min_side[t]);
        prop_assert_eq!(net.cut_capacity(&min_side), want);

        let max_side = net.max_cut_source_side(t);
        prop_assert!(max_side[s]);
        prop_assert!(!max_side[t]);
        prop_assert_eq!(net.cut_capacity(&max_side), want);

        // Minimal side ⊆ maximal side.
        for v in 0..n {
            prop_assert!(!min_side[v] || max_side[v]);
        }
    }
}
