//! Concurrent query serving for the DDS stack: **readers scale on
//! snapshots, writers own the engines**.
//!
//! The `--follow` serving loop (PR 5) ingests and certifies, but nothing
//! answered queries. This crate is the read path:
//!
//! * [`EpochSnapshot`] — everything a query can ask about one sealed
//!   epoch (certified bracket, witness sides as bitsets, optional
//!   `[x, y]`-core, optional top-k list), immutable once built;
//! * [`SnapshotCell`] — the hand-rolled arc-swap (`Mutex<Arc<_>>`
//!   writes, lock-then-clone reads) the ingestion loop swaps once per
//!   sealed epoch;
//! * [`Publisher`] — the writer-side glue turning an engine's epoch
//!   report into a published snapshot, materializing the graph only when
//!   core/top-k serving needs it;
//! * [`Server`] — a `std::net::TcpListener` accept loop fanning
//!   connections over a dedicated reader thread pool, speaking the
//!   line protocol in [`protocol`] (`DENSITY`, `MEMBER v`, `CORE x y v`,
//!   `TOPK k`);
//! * [`ServeMetrics`] — `dds_serve_*` counters and latency histograms,
//!   exported through `dds-obs`.
//!
//! A query costs one mutex-guarded `Arc` clone plus bitset lookups — no
//! query ever blocks on ingestion, a refresh, or an exact solve, and
//! every response names the epoch it answered from so clients can check
//! that served epochs never move backwards.

#![warn(missing_docs)]

pub mod protocol;
mod publish;
mod server;
mod snapshot;

pub use protocol::{answer, parse_query, respond, Query};
pub use publish::{EpochFacts, PublishOptions, Publisher};
pub use server::{ServeMetrics, Server};
pub use snapshot::{Bitset, CoreSnapshot, EpochSnapshot, SnapshotCell, TopKEntry};
