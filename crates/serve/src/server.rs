//! The TCP front end: accept loop + dedicated reader thread pool.
//!
//! Connections are fanned out over a channel to `readers` threads, each
//! running a blocking per-connection loop. A connection occupies its
//! reader until the client disconnects (or sends `QUIT`), so the pool
//! size bounds the number of *concurrent connections*, not just in-flight
//! queries — size `readers` to the expected concurrent client count
//! (excess connections queue until a reader frees up). The readers are a
//! *dedicated* pool rather than `dds_core::pool::WorkerPool`: the compute pool's
//! workers must never park inside a blocking socket read (a stalled
//! client would steal a core from the solver), whereas these threads
//! exist precisely to block on sockets.
//!
//! Reads use a short poll timeout so every reader re-checks the shutdown
//! flag a few times a second; [`Server::shutdown`] therefore returns even
//! if clients are still connected.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dds_obs::{Counter, Gauge, Histogram, LagGauges, Registry, SlowRing};

use crate::protocol::respond_with;
use crate::snapshot::SnapshotCell;

/// How often a blocked reader wakes to re-check the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// Serving-side metrics, exported through `dds-obs` when attached.
///
/// Counters start standalone (engine pattern): [`ServeMetrics::attach_obs`]
/// re-homes them into a registry, transferring any counts already
/// accumulated. The latency histograms are no-ops until attached.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Queries answered (including error responses).
    pub queries: Counter,
    /// Queries answered with an `ERR` response.
    pub query_errors: Counter,
    /// Connections accepted.
    pub connections: Counter,
    /// Snapshots published.
    pub publishes: Counter,
    /// Reader-pool size (the concurrent-connection capacity).
    pub readers: Gauge,
    /// Readers currently serving a connection (saturation signal).
    pub readers_busy: Gauge,
    /// Staleness gauges (`dds_lag_*`), fed by the serving loop.
    pub lag: LagGauges,
    /// Per-query latency (parse + answer + write), µs.
    pub query_latency: Histogram,
    /// Per-publish latency (snapshot build + swap), µs.
    pub publish_latency: Histogram,
    /// Slow-query sink: over-threshold queries are recorded with their
    /// query line as detail. Set once via [`ServeMetrics::attach_slow_ring`].
    slow: std::sync::OnceLock<Arc<SlowRing>>,
}

impl ServeMetrics {
    /// Fresh standalone metrics.
    #[must_use]
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    /// Re-homes the counters into `registry` (transferring accumulated
    /// counts) and arms the latency histograms.
    pub fn attach_obs(&mut self, registry: &Registry) {
        let transfer = |old: &mut Counter, name: &str| {
            let new = registry.counter(name);
            new.add(old.get());
            *old = new;
        };
        transfer(&mut self.queries, "dds_serve_queries_total");
        transfer(&mut self.query_errors, "dds_serve_query_errors_total");
        transfer(&mut self.connections, "dds_serve_connections_total");
        transfer(&mut self.publishes, "dds_serve_publish_total");
        let regauge = |old: &mut Gauge, name: &str| {
            let new = registry.gauge(name);
            new.set(old.get());
            *old = new;
        };
        regauge(&mut self.readers, "dds_serve_readers");
        regauge(&mut self.readers_busy, "dds_serve_readers_busy");
        self.lag.attach_obs(registry);
        self.query_latency = registry.histogram("dds_serve_query_latency_us");
        self.publish_latency = registry.histogram("dds_serve_publish_latency_us");
    }

    /// Records over-threshold queries into `ring` (first ring wins).
    pub fn attach_slow_ring(&self, ring: Arc<SlowRing>) {
        let _ = self.slow.set(ring);
    }
}

/// A running query server. Dropping it without [`Server::shutdown`]
/// leaks the listener thread for the rest of the process — always shut
/// down explicitly.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    readers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept loop plus `readers` query threads answering from
    /// `cell`'s published snapshot. Each connection holds one reader
    /// until it closes, so `readers` caps concurrent connections.
    ///
    /// # Errors
    /// Propagates the bind failure.
    ///
    /// # Panics
    /// Panics if `readers == 0`.
    pub fn start(
        addr: &str,
        cell: Arc<SnapshotCell>,
        readers: usize,
        metrics: Arc<ServeMetrics>,
    ) -> std::io::Result<Server> {
        assert!(readers > 0, "a server needs at least one reader thread");
        metrics.readers.set(readers as u64);
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let reader_threads = (0..readers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                let metrics = Arc::clone(&metrics);
                std::thread::Builder::new()
                    .name(format!("dds-serve-reader-{i}"))
                    .spawn(move || reader_loop(&rx, &cell, &stop, &metrics))
                    .expect("spawn reader thread")
            })
            .collect();
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("dds-serve-accept".into())
                .spawn(move || accept_loop(&listener, &tx, &stop, &metrics))
                .expect("spawn accept thread")
        };
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            readers: reader_threads,
        })
    }

    /// The bound address (resolves the port when started on `:0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes every reader, and joins all threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `accept()`; a throwaway local
        // connection unblocks it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.readers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &Sender<TcpStream>,
    stop: &AtomicBool,
    metrics: &ServeMetrics,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                metrics.connections.inc();
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
    // Dropping `tx` here lets idle readers fall out of `recv()`.
}

fn reader_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    cell: &SnapshotCell,
    stop: &AtomicBool,
    metrics: &ServeMetrics,
) {
    loop {
        // Poll rather than block forever: the accept thread only drops the
        // sender after its own loop exits, and shutdown must not depend on
        // thread join order.
        let conn = {
            let guard = rx.lock().expect("reader channel poisoned");
            guard.recv_timeout(READ_POLL)
        };
        match conn {
            Ok(stream) => {
                metrics.readers_busy.inc();
                serve_connection(stream, cell, stop, metrics);
                metrics.readers_busy.dec();
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Runs one connection to completion: reads `\n`-terminated query lines,
/// answers each from the *currently published* snapshot (one `load()` per
/// query — a query spanning a publish answers entirely from one epoch,
/// never a torn mix).
fn serve_connection(
    mut stream: TcpStream,
    cell: &SnapshotCell,
    stop: &AtomicBool,
    metrics: &ServeMetrics,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut carry: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return, // client closed
            Ok(k) => {
                carry.extend_from_slice(&buf[..k]);
                let mut start = 0usize;
                while let Some(nl) = carry[start..].iter().position(|&b| b == b'\n') {
                    let line = String::from_utf8_lossy(&carry[start..start + nl]).into_owned();
                    start += nl + 1;
                    let t0 = Instant::now();
                    let snap = cell.load();
                    let Some((response, is_err)) = respond_with(&snap, Some(metrics), &line) else {
                        return; // QUIT
                    };
                    metrics.queries.inc();
                    if is_err {
                        metrics.query_errors.inc();
                    }
                    if stream
                        .write_all(format!("{response}\n").as_bytes())
                        .is_err()
                    {
                        return;
                    }
                    let elapsed = t0.elapsed();
                    metrics.query_latency.observe(elapsed);
                    if let Some(ring) = metrics.slow.get() {
                        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
                        ring.record("serve.query", us, line.trim());
                    }
                }
                carry.drain(..start);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::EpochSnapshot;
    use std::io::BufRead;

    fn query(
        stream: &mut TcpStream,
        reader: &mut std::io::BufReader<TcpStream>,
        q: &str,
    ) -> String {
        stream.write_all(format!("{q}\n").as_bytes()).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn serves_published_snapshots_over_tcp() {
        let cell = Arc::new(SnapshotCell::new());
        let metrics = Arc::new(ServeMetrics::new());
        let mut server =
            Server::start("127.0.0.1:0", Arc::clone(&cell), 2, Arc::clone(&metrics)).unwrap();
        let addr = server.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        assert!(query(&mut stream, &mut reader, "DENSITY").contains("epoch=0"));

        let mut snap = EpochSnapshot::empty();
        snap.epoch = 1;
        snap.n = 4;
        snap.m = 3;
        snap.density = 1.5;
        snap.lower = 1.5;
        snap.upper = 2.0;
        snap.witness_s = crate::snapshot::Bitset::from_ids(4, &[0]);
        snap.witness_t = crate::snapshot::Bitset::from_ids(4, &[1]);
        cell.publish(snap);

        // The same connection sees the new epoch without reconnecting.
        let density = query(&mut stream, &mut reader, "DENSITY");
        assert!(
            density.contains("epoch=1") && density.contains("m=3"),
            "{density}"
        );
        assert!(query(&mut stream, &mut reader, "MEMBER 0").ends_with("side=S"));
        let err = query(&mut stream, &mut reader, "CORE 1 1 0");
        assert!(err.starts_with("ERR epoch=1"), "{err}");

        // Pipelined queries in one write still get one response each.
        stream.write_all(b"DENSITY\nMEMBER 1\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK DENSITY"), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("side=T"), "{line}");

        stream.write_all(b"QUIT\n").unwrap();
        let mut end = String::new();
        assert_eq!(reader.read_line(&mut end).unwrap(), 0, "QUIT closes");

        assert_eq!(metrics.connections.get(), 1);
        assert_eq!(metrics.queries.get(), 6);
        assert_eq!(metrics.query_errors.get(), 1);
        server.shutdown();
    }

    #[test]
    fn stats_answers_live_counters_and_saturation() {
        let cell = Arc::new(SnapshotCell::new());
        let metrics = Arc::new(ServeMetrics::new());
        let ring = Arc::new(dds_obs::SlowRing::new(4, 0));
        metrics.attach_slow_ring(Arc::clone(&ring));
        let mut server =
            Server::start("127.0.0.1:0", Arc::clone(&cell), 2, Arc::clone(&metrics)).unwrap();

        let mut snap = EpochSnapshot::empty();
        snap.epoch = 3;
        cell.publish(snap);
        metrics.publishes.inc();
        metrics.lag.snapshot_age_epochs.set(1);
        metrics.lag.tail_bytes.set(640);

        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let first = query(&mut stream, &mut reader, "DENSITY");
        assert!(first.contains("epoch=3"), "{first}");
        let stats = query(&mut stream, &mut reader, "STATS");
        // `queries` counts queries answered before this one (the DENSITY).
        assert_eq!(
            stats,
            "OK STATS epoch=3 queries=1 errors=0 connections=1 publishes=1 \
             readers=2 busy=1 age_epochs=1 tail_bytes=640 seal_publish_us=0 idle_ms=0"
        );
        // A zero-threshold ring sees every answered query.
        server.shutdown();
        let slow: Vec<String> = ring.snapshot().into_iter().map(|op| op.detail).collect();
        assert!(slow.contains(&"DENSITY".to_string()), "{slow:?}");
        assert!(slow.contains(&"STATS".to_string()), "{slow:?}");
    }

    #[test]
    fn shutdown_returns_with_a_client_still_connected() {
        let cell = Arc::new(SnapshotCell::new());
        let metrics = Arc::new(ServeMetrics::new());
        let mut server = Server::start("127.0.0.1:0", cell, 1, metrics).unwrap();
        let _lingering = TcpStream::connect(server.addr()).unwrap();
        let t0 = Instant::now();
        server.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "shutdown must not wait for clients"
        );
    }
}
