//! The writer side: turning one sealed epoch into a published snapshot.
//!
//! [`Publisher`] lives with the ingestion loop. After every
//! `engine.apply(batch)` the loop hands it the epoch's facts (bracket,
//! witness, counters) plus a lazy `materialize` closure; the publisher
//! builds an [`EpochSnapshot`] and swaps it into the shared cell. The
//! graph is materialized **only** when a query type actually needs it:
//!
//! * `--core X,Y` recomputes the `[x, y]`-core every epoch (a core is a
//!   property of the current graph, not of the last solve);
//! * `--topk K` re-runs [`dds_core::top_k_dense_pairs`] only on epochs
//!   whose certificate was re-established by a solve — between solves the
//!   list cannot have been re-certified either, so the previous list is
//!   carried forward unchanged (it stays consistent with the served
//!   bracket, which is also witness-anchored between solves).
//!
//! With neither enabled, publishing is allocation-light: two witness
//! bitsets and an `Arc` swap.

use std::sync::Arc;
use std::time::Instant;

use dds_core::{top_k_dense_pairs, TopKSolver};
use dds_graph::{DiGraph, Pair};
use dds_xycore::xy_core;

use crate::server::ServeMetrics;
use crate::snapshot::{EpochSnapshot, SnapshotCell, TopKEntry};

/// What the publisher derives beyond the engine's own report.
#[derive(Clone, Copy, Debug, Default)]
pub struct PublishOptions {
    /// Maintain and serve the `[x, y]`-core.
    pub core: Option<(u64, u64)>,
    /// Maintain and serve the top-k dense-pair list (0 disables).
    pub top_k: usize,
}

/// One sealed epoch's facts, as reported by the ingesting engine.
#[derive(Clone, Copy, Debug)]
pub struct EpochFacts<'a> {
    /// 1-based epoch id (must advance on every publish).
    pub epoch: u64,
    /// Vertex-id space size.
    pub n: usize,
    /// Live edge count.
    pub m: u64,
    /// Reported density.
    pub density: f64,
    /// Certified lower bound.
    pub lower: f64,
    /// Certified upper bound.
    pub upper: f64,
    /// The certified witness pair, if any.
    pub witness: Option<&'a Pair>,
    /// Whether this epoch re-established its certificate with a solve
    /// (gates the top-k recompute).
    pub resolved: bool,
}

/// Builds and publishes snapshots; owned by the ingestion loop.
#[derive(Debug)]
pub struct Publisher {
    cell: Arc<SnapshotCell>,
    opts: PublishOptions,
    metrics: Arc<ServeMetrics>,
    last_top_k: Vec<TopKEntry>,
    top_k_fresh: bool,
}

impl Publisher {
    /// A publisher writing into `cell` with the given derived-query
    /// options.
    #[must_use]
    pub fn new(cell: Arc<SnapshotCell>, opts: PublishOptions, metrics: Arc<ServeMetrics>) -> Self {
        Publisher {
            cell,
            opts,
            metrics,
            last_top_k: Vec::new(),
            top_k_fresh: false,
        }
    }

    /// Seals one epoch: builds the snapshot and swaps it in.
    /// `materialize` is called at most once, and only when `--core` /
    /// `--topk` serving needs the graph this epoch.
    pub fn publish(&mut self, facts: EpochFacts<'_>, materialize: impl FnOnce() -> DiGraph) {
        let t0 = Instant::now();
        let needs_top_k = self.opts.top_k > 0 && (facts.resolved || !self.top_k_fresh);
        let mut graph: Option<DiGraph> = None;
        if self.opts.core.is_some() || needs_top_k {
            graph = Some(materialize());
        }
        let core = self.opts.core.map(|(x, y)| {
            let g = graph.as_ref().expect("graph materialized for core");
            EpochSnapshot::core_from_mask(x, y, &xy_core(g, x, y))
        });
        if needs_top_k {
            let g = graph.as_ref().expect("graph materialized for top-k");
            self.last_top_k = top_k_dense_pairs(g, self.opts.top_k, TopKSolver::CoreApprox)
                .iter()
                .map(|sol| TopKEntry {
                    density: sol.density.to_f64(),
                    s_size: sol.pair.s().len(),
                    t_size: sol.pair.t().len(),
                })
                .collect();
            self.top_k_fresh = true;
        }
        let (witness_s, witness_t) = EpochSnapshot::witness_sets(facts.n, facts.witness);
        self.cell.publish(EpochSnapshot {
            epoch: facts.epoch,
            n: facts.n,
            m: facts.m,
            density: facts.density,
            lower: facts.lower,
            upper: facts.upper,
            witness_s,
            witness_t,
            core,
            top_k: self.last_top_k.clone(),
        });
        self.metrics.publishes.inc();
        self.metrics.publish_latency.observe(t0.elapsed());
    }

    /// The shared cell this publisher writes into.
    #[must_use]
    pub fn cell(&self) -> &Arc<SnapshotCell> {
        &self.cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_graph::DiGraph;

    fn tiny() -> DiGraph {
        // 0 -> {2, 3}, 1 -> {2, 3}: the densest pair is ({0,1}, {2,3}).
        DiGraph::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap()
    }

    fn facts(epoch: u64, witness: Option<&Pair>, resolved: bool) -> EpochFacts<'_> {
        EpochFacts {
            epoch,
            n: 4,
            m: 4,
            density: 2.0,
            lower: 2.0,
            upper: 2.0,
            witness,
            resolved,
        }
    }

    #[test]
    fn publish_builds_core_and_topk() {
        let cell = Arc::new(SnapshotCell::new());
        let metrics = Arc::new(ServeMetrics::new());
        let mut publisher = Publisher::new(
            Arc::clone(&cell),
            PublishOptions {
                core: Some((2, 2)),
                top_k: 2,
            },
            Arc::clone(&metrics),
        );
        let witness = Pair::new(vec![0, 1], vec![2, 3]);
        publisher.publish(facts(1, Some(&witness), true), tiny);
        let snap = cell.load();
        assert_eq!(snap.epoch, 1);
        assert!(snap.witness_s.contains(0) && snap.witness_t.contains(3));
        let core = snap.core.as_ref().expect("core enabled");
        assert_eq!((core.x, core.y), (2, 2));
        assert!(core.s.contains(0) && core.s.contains(1));
        assert!(core.t.contains(2) && core.t.contains(3));
        assert!(!core.s.contains(2));
        assert!(!snap.top_k.is_empty());
        assert!((snap.top_k[0].density - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unresolved_epochs_carry_the_topk_list_without_materializing() {
        let cell = Arc::new(SnapshotCell::new());
        let metrics = Arc::new(ServeMetrics::new());
        let mut publisher = Publisher::new(
            Arc::clone(&cell),
            PublishOptions {
                core: None,
                top_k: 2,
            },
            metrics,
        );
        let witness = Pair::new(vec![0, 1], vec![2, 3]);
        publisher.publish(facts(1, Some(&witness), true), tiny);
        let first = cell.load().top_k.clone();
        assert!(!first.is_empty());
        publisher.publish(facts(2, Some(&witness), false), || {
            panic!("unresolved epoch with a fresh list must not materialize")
        });
        let snap2 = cell.load();
        assert_eq!(snap2.epoch, 2);
        assert_eq!(snap2.top_k, first, "list is carried forward verbatim");
    }

    #[test]
    fn publish_skips_materialize_when_nothing_needs_the_graph() {
        let cell = Arc::new(SnapshotCell::new());
        let metrics = Arc::new(ServeMetrics::new());
        let mut publisher = Publisher::new(Arc::clone(&cell), PublishOptions::default(), metrics);
        publisher.publish(
            EpochFacts {
                epoch: 1,
                n: 3,
                m: 1,
                density: 1.0,
                lower: 1.0,
                upper: 1.0,
                witness: None,
                resolved: true,
            },
            || panic!("no derived query types: materialize must not run"),
        );
        assert_eq!(cell.load().epoch, 1);
        assert!(cell.load().core.is_none());
        assert!(cell.load().top_k.is_empty());
    }
}
