//! The line-oriented query protocol.
//!
//! One query per `\n`-terminated line, one response line per query. Every
//! response — including errors — carries `epoch=<id>` so clients can
//! assert that the epochs they observe never go backwards (the
//! stale-read check in the oracle test and E18).
//!
//! Grammar (tokens separated by ASCII whitespace, queries case-insensitive):
//!
//! ```text
//! DENSITY            -> OK DENSITY epoch=E n=N m=M density=D lower=L upper=U
//! MEMBER v           -> OK MEMBER epoch=E v=V side=S|T|BOTH|NONE
//! CORE x y v         -> OK CORE epoch=E x=X y=Y v=V side=S|T|BOTH|NONE
//! TOPK k             -> OK TOPK epoch=E k=K [d:|S|:|T| ...]
//! STATS              -> OK STATS epoch=E queries=Q errors=R connections=C
//!                       publishes=P readers=N busy=B age_epochs=A
//!                       tail_bytes=T seal_publish_us=S idle_ms=I
//! QUIT               -> (connection closes, no response)
//! anything else      -> ERR epoch=E <message>
//! ```
//!
//! `MEMBER` answers against the certified witness pair (`S` and `T` may
//! overlap, hence `BOTH`). `CORE x y v` is answered only when the
//! publisher maintains exactly the `[x, y]`-core; asking for a different
//! core is an `ERR` naming the one being served, not a silent wrong
//! answer. `TOPK k` serves the publish-time top-k list truncated to `k`.
//! `STATS` reports the serving-side counters plus the `dds_lag_*` gauges
//! (see [`ServeMetrics`]); `queries` counts queries *answered before*
//! this one.

use crate::server::ServeMetrics;
use crate::snapshot::{Bitset, EpochSnapshot};

/// A parsed query line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Query {
    /// `DENSITY`: the certified bracket of the current epoch.
    Density,
    /// `MEMBER v`: which witness side(s) contain vertex `v`.
    Member(u32),
    /// `CORE x y v`: is `v` in the maintained `[x, y]`-core.
    Core(u64, u64, u32),
    /// `TOPK k`: the best `k` published dense pairs.
    TopK(usize),
    /// `STATS`: serving-side counters and lag gauges.
    Stats,
    /// `QUIT`: close the connection.
    Quit,
}

/// Parses one query line. `Err` is the human-readable message to ship
/// back inside an `ERR` response.
pub fn parse_query(line: &str) -> Result<Query, String> {
    let mut it = line.split_ascii_whitespace();
    let Some(verb) = it.next() else {
        return Err("empty query".into());
    };
    let query = match verb.to_ascii_uppercase().as_str() {
        "DENSITY" => Query::Density,
        "MEMBER" => Query::Member(field(it.next(), "MEMBER needs a vertex id")?),
        "CORE" => {
            let x = field(it.next(), "CORE needs x y v")?;
            let y = field(it.next(), "CORE needs x y v")?;
            let v = field(it.next(), "CORE needs x y v")?;
            Query::Core(x, y, v)
        }
        "TOPK" => Query::TopK(field(it.next(), "TOPK needs k")?),
        "STATS" => Query::Stats,
        "QUIT" => Query::Quit,
        other => return Err(format!("unknown query {other:?}")),
    };
    if it.next().is_some() {
        return Err(format!("trailing tokens after {verb}"));
    }
    Ok(query)
}

fn field<T: std::str::FromStr>(tok: Option<&str>, msg: &str) -> Result<T, String> {
    let tok = tok.ok_or_else(|| msg.to_string())?;
    tok.parse()
        .map_err(|_| format!("bad argument {tok:?}: {msg}"))
}

/// Which side(s) of a two-sided vertex set contain `v`.
fn side(s: &Bitset, t: &Bitset, v: u32) -> &'static str {
    match (s.contains(v), t.contains(v)) {
        (true, true) => "BOTH",
        (true, false) => "S",
        (false, true) => "T",
        (false, false) => "NONE",
    }
}

/// Answers a parsed query against one immutable snapshot.
///
/// `Ok` is the full `OK ...` line; `Err` is the message body of an
/// `ERR epoch=<e> ...` line. [`Query::Quit`] never reaches this function.
pub fn answer(snap: &EpochSnapshot, query: Query) -> Result<String, String> {
    match query {
        Query::Density => Ok(format!(
            "OK DENSITY epoch={} n={} m={} density={:.6} lower={:.6} upper={:.6}",
            snap.epoch, snap.n, snap.m, snap.density, snap.lower, snap.upper
        )),
        Query::Member(v) => Ok(format!(
            "OK MEMBER epoch={} v={} side={}",
            snap.epoch,
            v,
            side(&snap.witness_s, &snap.witness_t, v)
        )),
        Query::Core(x, y, v) => {
            let Some(core) = snap.core.as_ref() else {
                return Err("no core maintained (enable with --core X,Y)".into());
            };
            if (core.x, core.y) != (x, y) {
                return Err(format!(
                    "core [{x},{y}] not maintained (serving [{},{}])",
                    core.x, core.y
                ));
            }
            Ok(format!(
                "OK CORE epoch={} x={x} y={y} v={v} side={}",
                snap.epoch,
                side(&core.s, &core.t, v)
            ))
        }
        Query::TopK(k) => {
            let served = snap.top_k.len().min(k);
            let mut line = format!("OK TOPK epoch={} k={served}", snap.epoch);
            for entry in &snap.top_k[..served] {
                use std::fmt::Write as _;
                let _ = write!(
                    line,
                    " {:.6}:{}:{}",
                    entry.density, entry.s_size, entry.t_size
                );
            }
            Ok(line)
        }
        Query::Stats => Err("stats are not served on this endpoint".into()),
        Query::Quit => unreachable!("QUIT is handled by the connection loop"),
    }
}

/// Answers `STATS` from the live serving metrics (relaxed atomic loads
/// only — the same lock-free read discipline as the admin plane).
#[must_use]
pub fn answer_stats(snap: &EpochSnapshot, metrics: &ServeMetrics) -> String {
    format!(
        "OK STATS epoch={} queries={} errors={} connections={} publishes={} \
         readers={} busy={} age_epochs={} tail_bytes={} seal_publish_us={} idle_ms={}",
        snap.epoch,
        metrics.queries.get(),
        metrics.query_errors.get(),
        metrics.connections.get(),
        metrics.publishes.get(),
        metrics.readers.get(),
        metrics.readers_busy.get(),
        metrics.lag.snapshot_age_epochs.get(),
        metrics.lag.tail_bytes.get(),
        metrics.lag.seal_publish_us.get(),
        metrics.lag.follow_idle_ms.get(),
    )
}

/// Parses and answers one raw line. Returns the response text and whether
/// it is an error response; `None` means the client asked to `QUIT`.
/// `STATS` answers from `metrics` when given and is an `ERR` otherwise
/// (endpoints that only have a snapshot to serve).
pub fn respond_with(
    snap: &EpochSnapshot,
    metrics: Option<&ServeMetrics>,
    line: &str,
) -> Option<(String, bool)> {
    match parse_query(line) {
        Ok(Query::Quit) => None,
        Ok(Query::Stats) => Some(match metrics {
            Some(m) => (answer_stats(snap, m), false),
            None => (
                format!(
                    "ERR epoch={} stats are not served on this endpoint",
                    snap.epoch
                ),
                true,
            ),
        }),
        Ok(query) => Some(match answer(snap, query) {
            Ok(ok) => (ok, false),
            Err(msg) => (format!("ERR epoch={} {msg}", snap.epoch), true),
        }),
        Err(msg) => Some((format!("ERR epoch={} {msg}", snap.epoch), true)),
    }
}

/// [`respond_with`] without a metrics source.
pub fn respond(snap: &EpochSnapshot, line: &str) -> Option<(String, bool)> {
    respond_with(snap, None, line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{CoreSnapshot, TopKEntry};

    fn snap() -> EpochSnapshot {
        let mut s = EpochSnapshot::empty();
        s.epoch = 7;
        s.n = 10;
        s.m = 12;
        s.density = 2.5;
        s.lower = 2.5;
        s.upper = 3.0;
        s.witness_s = Bitset::from_ids(10, &[1, 2]);
        s.witness_t = Bitset::from_ids(10, &[2, 3]);
        s.core = Some(CoreSnapshot {
            x: 2,
            y: 1,
            s: Bitset::from_ids(10, &[4]),
            t: Bitset::from_ids(10, &[5]),
        });
        s.top_k = vec![
            TopKEntry {
                density: 2.5,
                s_size: 2,
                t_size: 2,
            },
            TopKEntry {
                density: 1.0,
                s_size: 1,
                t_size: 1,
            },
        ];
        s
    }

    #[test]
    fn parse_accepts_the_grammar() {
        assert_eq!(parse_query("DENSITY"), Ok(Query::Density));
        assert_eq!(parse_query("  member 3 "), Ok(Query::Member(3)));
        assert_eq!(parse_query("CORE 2 1 9"), Ok(Query::Core(2, 1, 9)));
        assert_eq!(parse_query("topk 4"), Ok(Query::TopK(4)));
        assert_eq!(parse_query("QUIT"), Ok(Query::Quit));
        assert!(parse_query("").is_err());
        assert!(parse_query("MEMBER").is_err());
        assert!(parse_query("MEMBER x").is_err());
        assert!(parse_query("CORE 1 2").is_err());
        assert!(parse_query("DENSITY now").is_err());
        assert!(parse_query("EXPLODE").is_err());
    }

    #[test]
    fn answers_carry_the_epoch_and_sides() {
        let snap = snap();
        let density = answer(&snap, Query::Density).unwrap();
        assert_eq!(
            density,
            "OK DENSITY epoch=7 n=10 m=12 density=2.500000 lower=2.500000 upper=3.000000"
        );
        assert!(answer(&snap, Query::Member(1)).unwrap().ends_with("side=S"));
        assert!(answer(&snap, Query::Member(2))
            .unwrap()
            .ends_with("side=BOTH"));
        assert!(answer(&snap, Query::Member(3)).unwrap().ends_with("side=T"));
        assert!(answer(&snap, Query::Member(99))
            .unwrap()
            .ends_with("side=NONE"));
        assert!(answer(&snap, Query::Core(2, 1, 4))
            .unwrap()
            .ends_with("side=S"));
        assert!(answer(&snap, Query::Core(2, 1, 6))
            .unwrap()
            .ends_with("side=NONE"));
        let mismatch = answer(&snap, Query::Core(3, 3, 4)).unwrap_err();
        assert!(mismatch.contains("serving [2,1]"), "{mismatch}");
        assert_eq!(
            answer(&snap, Query::TopK(5)).unwrap(),
            "OK TOPK epoch=7 k=2 2.500000:2:2 1.000000:1:1"
        );
        assert_eq!(
            answer(&snap, Query::TopK(1)).unwrap().matches(':').count(),
            2
        );
    }

    #[test]
    fn respond_wraps_errors_and_quit() {
        let snap = snap();
        assert!(respond(&snap, "QUIT").is_none());
        let (text, err) = respond(&snap, "BOGUS").unwrap();
        assert!(err && text.starts_with("ERR epoch=7 "), "{text}");
        let (text, err) = respond(&snap, "DENSITY").unwrap();
        assert!(!err && text.starts_with("OK DENSITY "), "{text}");
    }
}
