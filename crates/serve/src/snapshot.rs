//! Immutable per-epoch snapshots and the hand-rolled arc-swap cell.
//!
//! The serving design splits the world in two: **writers** (the ingestion
//! loop) own the engines and may take milliseconds per epoch; **readers**
//! (query threads) only ever see an immutable [`EpochSnapshot`] published
//! once per sealed epoch. A reader's whole interaction with shared state
//! is one short mutex hold to clone an `Arc` — it never waits on a
//! refresh, a solve, or another query.

use std::sync::{Arc, Mutex};

use dds_graph::{Pair, StMask, VertexId};

/// A compact membership set over vertex ids `0..len`.
///
/// One bit per vertex: 64 vertices per word. Queries against a snapshot
/// test membership millions of times while the witness itself rarely
/// exceeds a few thousand vertices, so the dense bitset is both smaller
/// and faster than a hash set at every size we serve.
#[derive(Clone, Debug, Default)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// An empty set over `len` vertex ids.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Bitset {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Builds the set `{ids}` over the id space `0..len`.
    ///
    /// # Panics
    /// Panics if any id is `>= len`.
    #[must_use]
    pub fn from_ids(len: usize, ids: &[VertexId]) -> Self {
        let mut set = Bitset::new(len);
        for &v in ids {
            set.insert(v);
        }
        set
    }

    /// Builds the set of indices where `flags` is `true`.
    #[must_use]
    pub fn from_flags(flags: &[bool]) -> Self {
        let mut set = Bitset::new(flags.len());
        for (i, &f) in flags.iter().enumerate() {
            if f {
                set.insert(i as VertexId);
            }
        }
        set
    }

    /// Adds `v` to the set.
    ///
    /// # Panics
    /// Panics if `v >= len`.
    pub fn insert(&mut self, v: VertexId) {
        let i = v as usize;
        assert!(i < self.len, "vertex {v} outside bitset of {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// `true` iff `v` is in the set. Ids outside `0..len` are never
    /// members (a query for a vertex the graph has not seen is a valid
    /// question with answer "no").
    #[must_use]
    pub fn contains(&self, v: VertexId) -> bool {
        let i = v as usize;
        i < self.len && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of members.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The id-space size this set was built over.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no vertex is a member.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// The maintained `[x, y]`-core, frozen at publish time.
#[derive(Clone, Debug)]
pub struct CoreSnapshot {
    /// Out-degree threshold `x` of the maintained core.
    pub x: u64,
    /// In-degree threshold `y` of the maintained core.
    pub y: u64,
    /// Source-side membership of the core.
    pub s: Bitset,
    /// Sink-side membership of the core.
    pub t: Bitset,
}

/// One entry of the published top-k list: the shape and density of one
/// vertex-disjoint dense pair (the pair's members are not shipped — the
/// `TOPK` query reports the ranking, `MEMBER` answers membership for the
/// certified top-1 witness).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopKEntry {
    /// Exact density of the pair.
    pub density: f64,
    /// `|S|` of the pair.
    pub s_size: usize,
    /// `|T|` of the pair.
    pub t_size: usize,
}

/// Everything a reader may be asked about one sealed epoch, immutable.
///
/// Built by [`crate::Publisher`] from the ingesting engine's own report,
/// then swapped into the [`SnapshotCell`]. Readers clone the `Arc`, so a
/// snapshot stays alive exactly as long as some query still holds it.
#[derive(Clone, Debug)]
pub struct EpochSnapshot {
    /// 1-based epoch id; 0 is the pre-ingestion empty snapshot.
    pub epoch: u64,
    /// Vertex-id space size at publish time.
    pub n: usize,
    /// Live edge count at publish time.
    pub m: u64,
    /// Reported density (exact density of the certified witness).
    pub density: f64,
    /// Certified lower bound on the optimum.
    pub lower: f64,
    /// Certified upper bound on the optimum.
    pub upper: f64,
    /// Source side `S` of the certified witness pair.
    pub witness_s: Bitset,
    /// Sink side `T` of the certified witness pair.
    pub witness_t: Bitset,
    /// The maintained `[x, y]`-core, when core serving is enabled.
    pub core: Option<CoreSnapshot>,
    /// Top-k vertex-disjoint dense pairs, best first (empty when top-k
    /// serving is disabled).
    pub top_k: Vec<TopKEntry>,
}

impl EpochSnapshot {
    /// The pre-ingestion snapshot: epoch 0, empty graph, empty witness.
    #[must_use]
    pub fn empty() -> Self {
        EpochSnapshot {
            epoch: 0,
            n: 0,
            m: 0,
            density: 0.0,
            lower: 0.0,
            upper: 0.0,
            witness_s: Bitset::default(),
            witness_t: Bitset::default(),
            core: None,
            top_k: Vec::new(),
        }
    }

    /// Builds the witness bitsets from a pair over id space `0..n`.
    #[must_use]
    pub fn witness_sets(n: usize, witness: Option<&Pair>) -> (Bitset, Bitset) {
        match witness {
            Some(p) => (Bitset::from_ids(n, p.s()), Bitset::from_ids(n, p.t())),
            None => (Bitset::new(n), Bitset::new(n)),
        }
    }

    /// Builds a [`CoreSnapshot`] from an `[x, y]`-core membership mask.
    #[must_use]
    pub fn core_from_mask(x: u64, y: u64, mask: &StMask) -> CoreSnapshot {
        CoreSnapshot {
            x,
            y,
            s: Bitset::from_flags(&mask.in_s),
            t: Bitset::from_flags(&mask.in_t),
        }
    }
}

/// The hand-rolled arc-swap: one mutex-guarded `Arc` slot.
///
/// `publish` (writer side, once per sealed epoch) replaces the `Arc`;
/// `load` (reader side, once per query) clones it. The mutex is held only
/// for the pointer swap / clone — never across snapshot construction or
/// query evaluation — so the critical section is a handful of
/// instructions and readers effectively never contend with the writer.
#[derive(Debug)]
pub struct SnapshotCell {
    slot: Mutex<Arc<EpochSnapshot>>,
}

impl SnapshotCell {
    /// A cell holding the empty epoch-0 snapshot.
    #[must_use]
    pub fn new() -> Self {
        SnapshotCell {
            slot: Mutex::new(Arc::new(EpochSnapshot::empty())),
        }
    }

    /// Atomically replaces the published snapshot.
    ///
    /// # Panics
    /// Panics if `snap.epoch` does not advance the published epoch —
    /// monotone epoch ids are the invariant the stale-read checks in the
    /// oracle and E18 rely on, so a regression here must be loud.
    pub fn publish(&self, snap: EpochSnapshot) {
        // Poison recovery is sound here: the slot is a single `Arc` that
        // is only ever replaced whole, so a writer that panicked (on the
        // monotonicity assert below) left the previous snapshot intact.
        let mut slot = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(
            snap.epoch > slot.epoch || (snap.epoch == 0 && slot.epoch == 0),
            "epoch must advance: published {} after {}",
            snap.epoch,
            slot.epoch
        );
        *slot = Arc::new(snap);
    }

    /// Clones the currently published snapshot (lock-then-clone read).
    #[must_use]
    pub fn load(&self) -> Arc<EpochSnapshot> {
        self.slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl Default for SnapshotCell {
    fn default() -> Self {
        SnapshotCell::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_membership_and_counts() {
        let set = Bitset::from_ids(130, &[0, 63, 64, 129]);
        assert!(set.contains(0) && set.contains(63) && set.contains(64) && set.contains(129));
        assert!(!set.contains(1) && !set.contains(128));
        assert!(!set.contains(130), "out-of-space ids are non-members");
        assert!(!set.contains(100_000));
        assert_eq!(set.count(), 4);
        assert!(!set.is_empty());
        assert!(Bitset::new(7).is_empty());
    }

    #[test]
    fn bitset_from_flags_matches_ids() {
        let flags = [false, true, true, false, true];
        let set = Bitset::from_flags(&flags);
        assert_eq!(set.count(), 3);
        for (i, &f) in flags.iter().enumerate() {
            assert_eq!(set.contains(i as VertexId), f);
        }
    }

    #[test]
    fn cell_swaps_atomically_and_rejects_stale_epochs() {
        let cell = SnapshotCell::new();
        assert_eq!(cell.load().epoch, 0);
        let snap = EpochSnapshot {
            epoch: 3,
            ..EpochSnapshot::empty()
        };
        cell.publish(snap);
        assert_eq!(cell.load().epoch, 3);
        let old = EpochSnapshot {
            epoch: 3,
            ..EpochSnapshot::empty()
        };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cell.publish(old)));
        assert!(err.is_err(), "replaying an epoch must panic");
        assert_eq!(cell.load().epoch, 3);
    }
}
