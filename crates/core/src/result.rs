//! The common answer type returned by every solver, plus the per-solve
//! instrumentation summary shared by the exact engine and the stream
//! engine's epoch reports.

use dds_graph::{DiGraph, Pair};
use dds_num::Density;

/// Per-solve instrumentation counters, surfaced by `ExactReport::stats`
/// and `dds-stream`'s `EpochReport::solve_stats` so perf regressions show
/// up in `dds bench` / `dds stream` logs (and CI) instead of silently
/// eating wall clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Ratios for which a per-ratio flow search actually ran.
    pub ratios_solved: usize,
    /// Flow decisions (min-cut computations) executed.
    pub flow_decisions: usize,
    /// Flow decisions that recycled a `FlowArena`'s buffers instead of
    /// allocating a fresh network.
    pub arena_reuse_hits: usize,
    /// `[x, y]`-core lookups answered from the `SolveContext` memo table
    /// instead of re-peeling the graph.
    pub core_cache_hits: usize,
}

impl SolveStats {
    /// Folds another solve's counters into this accumulator — the one
    /// shared accumulation path for every engine that totals escalated
    /// solves (`dds-sketch`, `dds-shard`, the stream engines).
    pub fn merge(&mut self, other: SolveStats) {
        self.ratios_solved += other.ratios_solved;
        self.flow_decisions += other.flow_decisions;
        self.arena_reuse_hits += other.arena_reuse_hits;
        self.core_cache_hits += other.core_cache_hits;
    }
}

/// A candidate or final answer to the DDS problem: the pair and its exact
/// density.
///
/// Solvers compare solutions through [`Density`]'s exact ordering; ties are
/// broken by whichever was found first, so two optimal pairs of equal
/// density are both acceptable answers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DdsSolution {
    /// The `(S, T)` pair.
    pub pair: Pair,
    /// Its exact density in the input graph.
    pub density: Density,
}

impl DdsSolution {
    /// The empty solution (density zero) — the answer on edgeless graphs
    /// and the identity for maxima.
    #[must_use]
    pub fn empty() -> Self {
        DdsSolution {
            pair: Pair::new(Vec::new(), Vec::new()),
            density: Density::ZERO,
        }
    }

    /// Wraps a pair, computing its exact density in `g`.
    #[must_use]
    pub fn from_pair(g: &DiGraph, pair: Pair) -> Self {
        let density = pair.density(g);
        DdsSolution { pair, density }
    }

    /// Replaces `self` with `candidate` when the candidate is strictly
    /// denser; returns whether it improved.
    pub fn improve_to(&mut self, candidate: DdsSolution) -> bool {
        if candidate.density > self.density {
            *self = candidate;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_graph::gen;

    #[test]
    fn empty_solution_is_zero() {
        let s = DdsSolution::empty();
        assert!(s.pair.is_empty());
        assert!(s.density.is_zero());
    }

    #[test]
    fn from_pair_computes_density() {
        let g = gen::complete_bipartite(2, 3);
        let s = DdsSolution::from_pair(&g, Pair::new(vec![0, 1], vec![2, 3, 4]));
        assert_eq!(s.density, Density::new(6, 2, 3));
    }

    #[test]
    fn improve_to_keeps_the_denser() {
        let g = gen::complete_bipartite(2, 3);
        let mut best = DdsSolution::empty();
        let full = DdsSolution::from_pair(&g, Pair::new(vec![0, 1], vec![2, 3, 4]));
        assert!(best.improve_to(full.clone()));
        let weaker = DdsSolution::from_pair(&g, Pair::new(vec![0], vec![2]));
        assert!(!best.improve_to(weaker));
        assert_eq!(best, full);
    }
}
