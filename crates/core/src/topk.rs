//! Top-k densest pairs: iterated solve-and-remove.
//!
//! Applications rarely stop at one dense structure — fraud pipelines pull
//! a ranked list of suspicious blocks, community analyses want several
//! cohesive groups. The classic recipe (used by the top-k variants in the
//! densest-subgraph literature) is greedy: find a densest pair, delete its
//! vertices, repeat. The pairs returned are vertex-disjoint and their
//! densities are non-increasing; pair `i + 1` is optimal (or
//! approximately optimal, per the chosen solver) *in the graph with the
//! first `i` answers removed* — the usual caveat that this is not the
//! globally optimal disjoint packing.

use dds_graph::DiGraph;

use crate::{core_approx, DcExact, DdsSolution, GridPeel};

/// Which solver powers each round of the greedy loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TopKSolver {
    /// Exact per round (`DcExact`); right for small/medium graphs.
    Exact,
    /// 2-approximation per round (`core_approx`); scales to large graphs.
    CoreApprox,
    /// `2(1+ε)`-approximation per round (`GridPeel`).
    GridPeel(f64),
}

/// Returns up to `k` vertex-disjoint dense pairs, densest-first, by
/// iterated solve-and-remove. Stops early when the residual graph has no
/// edges.
///
/// All returned pairs are expressed in the *original* vertex ids.
///
/// ```
/// use dds_core::{top_k_dense_pairs, TopKSolver};
/// use dds_graph::DiGraph;
///
/// // A dense block {0,1}→{2,3} plus a lone edge 4→5.
/// let g = DiGraph::from_edges(6, &[(0, 2), (0, 3), (1, 2), (1, 3), (4, 5)]).unwrap();
/// let found = top_k_dense_pairs(&g, 5, TopKSolver::Exact);
/// assert_eq!(found.len(), 2);
/// assert_eq!(found[0].density.to_f64(), 2.0); // the block first
/// assert_eq!(found[1].density.to_f64(), 1.0); // then the edge
/// ```
#[must_use]
pub fn top_k_dense_pairs(g: &DiGraph, k: usize, solver: TopKSolver) -> Vec<DdsSolution> {
    let mut results = Vec::new();
    let mut keep = vec![true; g.n()];
    for _ in 0..k {
        let (sub, map) = g.induced_subgraph(&keep);
        if sub.m() == 0 {
            break;
        }
        let local = match solver {
            TopKSolver::Exact => DcExact::new().solve(&sub).solution,
            TopKSolver::CoreApprox => core_approx(&sub).solution,
            TopKSolver::GridPeel(eps) => GridPeel::new(eps).solve(&sub).solution,
        };
        if local.pair.is_empty() || local.density.is_zero() {
            break;
        }
        let lifted = local.pair.relabel(&map);
        for &v in lifted.s().iter().chain(lifted.t()) {
            keep[v as usize] = false;
        }
        results.push(DdsSolution {
            pair: lifted,
            density: local.density,
        });
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_graph::{gen, GraphBuilder, Pair};

    /// Two disjoint planted blocks of different densities.
    fn two_blocks() -> DiGraph {
        let mut b = GraphBuilder::with_min_vertices(20);
        // Block 1: {0..3} → {4..8} complete (density √20 ≈ 4.47).
        for u in 0..4u32 {
            for v in 4..9u32 {
                b.add_edge(u, v);
            }
        }
        // Block 2: {10..12} → {13..15} complete (density 9/√9 = 3).
        for u in 10..13u32 {
            for v in 13..16u32 {
                b.add_edge(u, v);
            }
        }
        // A little noise between the rest.
        b.add_edge(16, 17).add_edge(17, 18).add_edge(18, 19);
        b.build()
    }

    #[test]
    fn recovers_both_planted_blocks_in_density_order() {
        let g = two_blocks();
        let found = top_k_dense_pairs(&g, 3, TopKSolver::Exact);
        assert!(found.len() >= 2);
        // Densest first: 20/√20 = √20 ≈ 4.47, then 9/√9 = 3.
        assert_eq!(found[0].pair, Pair::new((0..4).collect(), (4..9).collect()));
        assert_eq!(
            found[1].pair,
            Pair::new((10..13).collect(), (13..16).collect())
        );
        assert!(found[0].density > found[1].density);
    }

    #[test]
    fn pairs_are_vertex_disjoint_and_non_increasing() {
        let g = gen::power_law(150, 900, 2.2, 5);
        let found = top_k_dense_pairs(&g, 4, TopKSolver::CoreApprox);
        assert!(!found.is_empty());
        let mut seen = vec![false; g.n()];
        for sol in &found {
            for &v in sol.pair.s().iter().chain(sol.pair.t()) {
                assert!(!seen[v as usize], "vertex {v} reused across pairs");
                seen[v as usize] = true;
            }
            // Reported density is in the *residual* graph; in the full
            // graph the pair can only be at least that dense... it is
            // exactly that dense, because removed vertices cannot add
            // edges inside a disjoint pair.
            assert_eq!(sol.pair.density(&g), sol.density);
        }
        for w in found.windows(2) {
            assert!(w[0].density >= w[1].density);
        }
    }

    #[test]
    fn k_larger_than_supply_stops_early() {
        // K_{2,2} (density 2) plus one far-away edge (density 1): merging
        // them would only dilute (5/√9 < 2), so the rounds must separate
        // them and then run out of edges.
        let g = DiGraph::from_edges(6, &[(0, 2), (0, 3), (1, 2), (1, 3), (4, 5)]).unwrap();
        let found = top_k_dense_pairs(&g, 10, TopKSolver::Exact);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].density.to_f64(), 2.0);
        assert_eq!(found[1].density.to_f64(), 1.0);
        assert!(top_k_dense_pairs(&DiGraph::empty(5), 3, TopKSolver::Exact).is_empty());
    }

    #[test]
    fn grid_solver_variant_runs() {
        let g = two_blocks();
        let found = top_k_dense_pairs(&g, 2, TopKSolver::GridPeel(0.1));
        assert_eq!(found.len(), 2);
        assert!(found[0].density >= found[1].density);
    }

    #[test]
    fn zero_k_returns_nothing() {
        let g = two_blocks();
        assert!(top_k_dense_pairs(&g, 0, TopKSolver::Exact).is_empty());
    }

    use dds_graph::DiGraph;
}
