//! `GridPeel`: peeling over a geometric ratio grid — the Bahmani-style
//! `2(1+ε)`-approximation baseline.

use dds_graph::DiGraph;

use crate::approx::PeelResult;
use crate::peel::peel_at_f64_ratio;
use crate::DdsSolution;

/// Peeling swept over the geometric grid `c = (1+ε)^k` covering
/// `[1/n, n]`.
///
/// The peel guarantee holds at the optimum's own ratio `c*`; the grid
/// point nearest `c*` is within a factor `(1+ε)`, which dilutes the AM–GM
/// weighting by at most `(1+ε)` — hence a `2(1+ε)`-approximation in
/// `O((n+m) · log₁₊ε n)` total.
#[derive(Clone, Copy, Debug)]
pub struct GridPeel {
    /// Grid resolution; smaller ⇒ better quality, more peels. Typical: 0.1.
    pub epsilon: f64,
}

impl Default for GridPeel {
    fn default() -> Self {
        GridPeel { epsilon: 0.1 }
    }
}

impl GridPeel {
    /// A grid with the given resolution.
    ///
    /// # Panics
    /// Panics unless `epsilon` is finite and positive.
    #[must_use]
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive"
        );
        GridPeel { epsilon }
    }

    /// The grid points for a graph with `n` vertices: `(1+ε)^k` clamped to
    /// `[1/n, n]`, endpoints included.
    #[must_use]
    pub fn grid(&self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        let n_f = n as f64;
        let step = (1.0 + self.epsilon).ln();
        let k_max = (n_f.ln() / step).ceil() as i64;
        let mut points: Vec<f64> = (-k_max..=k_max)
            .map(|k| (k as f64 * step).exp())
            .map(|c| c.clamp(1.0 / n_f, n_f))
            .collect();
        points.dedup_by(|a, b| (*a - *b).abs() < f64::EPSILON * a.abs());
        points
    }

    /// Runs the sweep and returns the densest state over every grid peel.
    #[must_use]
    pub fn solve(&self, g: &DiGraph) -> PeelResult {
        let mut best = DdsSolution::empty();
        let grid = self.grid(g.n());
        let ratios_tried = grid.len();
        for c in grid {
            best.improve_to(peel_at_f64_ratio(g, c));
        }
        PeelResult {
            solution: best,
            ratios_tried,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::brute_force_dds;
    use dds_graph::gen;
    use dds_num::Density;

    #[test]
    fn grid_covers_the_ratio_range() {
        let gp = GridPeel::new(0.25);
        let grid = gp.grid(100);
        assert!(grid.first().copied().unwrap() <= 0.011);
        assert!(grid.last().copied().unwrap() >= 99.0);
        for w in grid.windows(2) {
            assert!(w[1] > w[0], "strictly increasing");
            assert!(w[1] / w[0] <= 1.2500001, "spacing bounded by 1+ε");
        }
        assert!(grid.contains(&1.0));
    }

    #[test]
    fn guarantee_with_epsilon_slack() {
        for seed in 0..8 {
            let g = gen::gnm(9, 26, seed);
            let opt = brute_force_dds(&g).density;
            let got = GridPeel::new(0.1).solve(&g).solution.density;
            assert!(got <= opt);
            // 2(1+ε)·ρ(got) ≥ ρ_opt, checked with f64 slack.
            assert!(
                2.2 * got.to_f64() >= opt.to_f64() - 1e-9,
                "seed={seed}: {got} vs {opt}"
            );
        }
    }

    #[test]
    fn exact_on_symmetric_instances() {
        // c* = 1 is always on the grid, so symmetric optima are found
        // exactly.
        let g = gen::complete_bipartite(3, 3);
        let r = GridPeel::default().solve(&g);
        assert_eq!(r.solution.density, Density::new(9, 3, 3));
        assert!(r.ratios_tried > 1);
    }

    #[test]
    fn smaller_epsilon_never_hurts() {
        let g = gen::power_law(120, 700, 2.2, 17);
        let coarse = GridPeel::new(1.0).solve(&g);
        let fine = GridPeel::new(0.05).solve(&g);
        assert!(fine.solution.density >= coarse.solution.density);
        assert!(fine.ratios_tried > coarse.ratios_tried);
    }

    #[test]
    fn empty_graph() {
        let r = GridPeel::default().solve(&DiGraph::empty(0));
        assert_eq!(r.solution, DdsSolution::empty());
        assert_eq!(r.ratios_tried, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_epsilon() {
        let _ = GridPeel::new(0.0);
    }

    use dds_graph::DiGraph;
}
