//! `ExhaustivePeel`: peeling at **every** candidate ratio — the quadratic
//! 2-approximation baseline the paper's `CoreApprox` is measured against.

use dds_graph::DiGraph;
use dds_num::candidate_ratios;

use crate::approx::PeelResult;
use crate::peel::peel_at_rational_ratio;
use crate::DdsSolution;

/// Charikar-style exhaustive peeling: one peel per reduced ratio `a/b`
/// with `a, b ≤ n` (Θ(n²) ratios), exact rational side comparisons.
///
/// Because the sweep includes the optimum's own ratio `c*`, the best state
/// is a true 2-approximation — at `Θ(n²·(n+m))` total cost, which is the
/// gap `CoreApprox` closes. Keep this on small graphs.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExhaustivePeel;

impl ExhaustivePeel {
    /// Maximum `n` accepted (the ratio set is quadratic in `n`).
    pub const MAX_N: usize = 4096;

    /// Runs the full sweep.
    ///
    /// # Panics
    /// Panics if `g.n() > Self::MAX_N`.
    #[must_use]
    pub fn solve(&self, g: &DiGraph) -> PeelResult {
        assert!(
            g.n() <= Self::MAX_N,
            "ExhaustivePeel is the quadratic baseline; n = {} is too large (max {}) — use GridPeel or core_approx",
            g.n(),
            Self::MAX_N
        );
        let mut best = DdsSolution::empty();
        let ratios = candidate_ratios(g.n() as u64);
        let ratios_tried = ratios.len();
        for r in ratios {
            best.improve_to(peel_at_rational_ratio(g, r.a(), r.b()));
        }
        PeelResult {
            solution: best,
            ratios_tried,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::brute_force_dds;
    use dds_graph::gen;
    use dds_num::Density;

    #[test]
    fn two_approximation_against_brute_force() {
        for seed in 0..10 {
            let g = gen::gnm(8, 22, seed);
            let opt = brute_force_dds(&g).density;
            let got = ExhaustivePeel.solve(&g).solution.density;
            assert!(got <= opt);
            // Exact half-approximation check.
            let lhs = 4u128
                * u128::from(got.edges)
                * u128::from(got.edges)
                * u128::from(opt.s)
                * u128::from(opt.t);
            let rhs = u128::from(opt.edges)
                * u128::from(opt.edges)
                * u128::from(got.s)
                * u128::from(got.t);
            assert!(lhs >= rhs, "seed={seed}: {got} vs {opt}");
        }
    }

    #[test]
    fn recovers_planted_fixtures_exactly() {
        let g = gen::complete_bipartite(2, 5);
        let r = ExhaustivePeel.solve(&g);
        assert_eq!(r.solution.density, Density::new(10, 2, 5));
        // n = 7 ⇒ 2·Σφ(k≤7) − 1 ratios.
        assert_eq!(r.ratios_tried, dds_num::candidate_ratios(7).len());
    }

    #[test]
    fn dominates_grid_peel() {
        // Exhaustive includes every grid-reachable state's ratio, so it
        // cannot do worse than a coarse grid.
        let g = gen::gnm(24, 110, 5);
        let exhaustive = ExhaustivePeel.solve(&g).solution.density;
        let grid = crate::GridPeel::new(1.0).solve(&g).solution.density;
        assert!(exhaustive >= grid);
    }

    #[test]
    fn empty_graph() {
        let r = ExhaustivePeel.solve(&DiGraph::empty(0));
        assert_eq!(r.solution, DdsSolution::empty());
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_graph_rejected() {
        let _ = ExhaustivePeel.solve(&DiGraph::empty(5000));
    }

    use dds_graph::DiGraph;
}
