//! `CoreApprox`: the paper's deterministic 2-approximation via the
//! maximum-product `[x, y]`-core.

use dds_graph::DiGraph;
use dds_xycore::max_product_core;

use crate::DdsSolution;

/// Outcome of [`core_approx`]: the core-derived solution plus the certified
/// bracket it implies on the optimum.
#[derive(Clone, Debug)]
pub struct CoreApproxResult {
    /// The `(S, T)` pair of the maximum-product core, with exact density.
    pub solution: DdsSolution,
    /// Out-degree threshold of the chosen core.
    pub x: u64,
    /// In-degree threshold of the chosen core.
    pub y: u64,
    /// Certified lower bound on the returned density *and* on `ρ_opt / 2`:
    /// `sqrt(x·y)`.
    pub lower_bound: f64,
    /// Certified upper bound on `ρ_opt`: `2·sqrt(x·y)`.
    pub upper_bound: f64,
    /// Number of `y_max`/`x_max` sweep evaluations spent.
    pub sweep_evals: usize,
}

/// The core-based 2-approximation.
///
/// Finds the non-empty `[x, y]`-core maximising `x·y` (two `√m`-bounded
/// sweeps, `O(√m·(n+m))`) and returns it. Guarantees, with
/// `P = x·y` the maximum product:
///
/// * **lower:** a non-empty `[x, y]`-core has `|E| ≥ max(x|S|, y|T|) ≥
///   sqrt(xy·|S||T|)`, so the returned density is `≥ sqrt(P)`;
/// * **upper:** every vertex of the optimum `(S*, T*)` survives removal
///   only if `d⁺ ≥ ρ_opt/(2√c*)` and `d⁻ ≥ ρ_opt·√c*/2` (otherwise
///   removing it would raise the density), so the
///   `[⌈ρ_opt/(2√c*)⌉, ⌈ρ_opt·√c*/2⌉]`-core is non-empty and has product
///   `≥ (ρ_opt/2)²`; hence `ρ_opt ≤ 2·sqrt(P)`.
///
/// Together: `ρ(returned) ≥ sqrt(P) ≥ ρ_opt / 2`.
///
/// Returns the empty solution (zero bounds) on edgeless graphs.
#[must_use]
pub fn core_approx(g: &DiGraph) -> CoreApproxResult {
    match max_product_core(g) {
        None => CoreApproxResult {
            solution: DdsSolution::empty(),
            x: 0,
            y: 0,
            lower_bound: 0.0,
            upper_bound: 0.0,
            sweep_evals: 0,
        },
        Some(best) => {
            let product = best.product();
            let pair = best.mask.to_pair();
            let solution = DdsSolution::from_pair(g, pair);
            let root = (product as f64).sqrt();
            CoreApproxResult {
                solution,
                x: best.x,
                y: best.y,
                lower_bound: root,
                upper_bound: 2.0 * root,
                sweep_evals: best.sweep_evals,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::brute_force_dds;
    use dds_graph::gen;
    use dds_num::Density;

    /// Exact check of `2·ρ(approx) ≥ ρ_opt`:
    /// `4·e_a²·s_o·t_o ≥ e_o²·s_a·t_a`.
    fn assert_half_approx(approx: Density, opt: Density) {
        let lhs = 4u128
            * u128::from(approx.edges)
            * u128::from(approx.edges)
            * u128::from(opt.s)
            * u128::from(opt.t);
        let rhs = u128::from(opt.edges)
            * u128::from(opt.edges)
            * u128::from(approx.s)
            * u128::from(approx.t);
        assert!(lhs >= rhs, "approx {approx} below half of optimum {opt}");
    }

    #[test]
    fn exact_on_complete_bipartite() {
        let g = gen::complete_bipartite(2, 3);
        let r = core_approx(&g);
        assert_eq!(r.solution.density, Density::new(6, 2, 3));
        assert_eq!((r.x, r.y), (3, 2));
        assert!((r.lower_bound - 6.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn exact_on_star() {
        let g = gen::out_star(16);
        let r = core_approx(&g);
        assert_eq!(r.solution.density, Density::new(16, 1, 16));
    }

    #[test]
    fn guarantee_against_brute_force() {
        for seed in 0..10 {
            let g = gen::gnm(9, 28, seed);
            let opt = brute_force_dds(&g).density;
            let r = core_approx(&g);
            assert_half_approx(r.solution.density, opt);
            assert!(r.solution.density <= opt, "cannot beat the optimum");
            // The certified bracket holds.
            assert!(r.solution.density.to_f64() >= r.lower_bound - 1e-9);
            assert!(opt.to_f64() <= r.upper_bound + 1e-9);
        }
    }

    #[test]
    fn planted_block_recovered_within_factor() {
        let p = gen::planted(120, 300, 5, 7, 1.0, 42);
        let planted_density = p.pair.density(&p.graph);
        let r = core_approx(&p.graph);
        // The approximation must reach at least half the planted density
        // (the optimum is at least the planted block).
        assert_half_approx(r.solution.density, planted_density);
    }

    #[test]
    fn edgeless_graph() {
        let r = core_approx(&DiGraph::empty(5));
        assert!(r.solution.pair.is_empty());
        assert_eq!(r.upper_bound, 0.0);
    }

    use dds_graph::DiGraph;
}
