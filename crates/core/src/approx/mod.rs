//! Approximation algorithms: the paper's `CoreApprox` and the peeling
//! baselines it is compared against.

mod core_approx;
mod exhaustive_peel;
mod grid_peel;

pub use core_approx::{core_approx, CoreApproxResult};
pub use exhaustive_peel::ExhaustivePeel;
pub use grid_peel::GridPeel;

/// Result of a peeling-based approximation: the best state over all ratios
/// tried, plus how many peels it cost.
#[derive(Clone, Debug)]
pub struct PeelResult {
    /// The best pair found and its exact density.
    pub solution: crate::DdsSolution,
    /// Number of ratio peels executed.
    pub ratios_tried: usize,
}
