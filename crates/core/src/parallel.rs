//! Parallel variants of the solvers.
//!
//! The paper notes that both the peeling sweeps and the core computations
//! parallelise naturally; this module provides implementations (no extra
//! dependencies) of:
//!
//! * [`dc_exact_parallel`] — the exact divide-and-conquer search with its
//!   ratio-interval work queue consumed by `threads` workers. Workers share
//!   the incumbent through the engine's atomic floor (plus a mutex for the
//!   exact pair), share γ certificates, share the context's memoised core
//!   table, and each own a private flow arena. The returned density is
//!   identical to the serial engine's (tested); the instrumentation traces
//!   differ only in order;
//! * [`grid_peel_parallel`] — grid points are independent peels; static
//!   chunking over `threads` workers;
//! * [`core_approx_parallel`] — the two `√m` sweeps of the max-product
//!   core search, each chunked over `x`-ranges (every chunk re-derives its
//!   own nested base from the full graph, trading a little redundant
//!   peeling for independence);
//! * [`for_each_mut`] — the bare work queue itself, generic over mutable
//!   items: `dds-shard` drives its edge-partitioned shards' batch applies
//!   through it, and the two helpers above are thin wrappers over it.
//!
//! Every helper here executes on the process-wide persistent
//! [`WorkerPool`](crate::pool::WorkerPool) — no per-call thread spawns —
//! and all return results identical to their sequential counterparts
//! (tested), so callers choose purely on wall-clock grounds (experiments
//! E11, E13, E17).

use std::sync::Mutex;

use dds_graph::{DiGraph, StMask};
use dds_num::isqrt;
use dds_xycore::{xy_core_within, y_max_core};

use crate::approx::{CoreApproxResult, PeelResult};
use crate::exact::run_with_context;
use crate::peel::peel_at_f64_ratio;
use crate::{DdsSolution, ExactOptions, ExactReport, GridPeel, SolveContext};

/// Runs `f` once over every item of `items` — each call getting exclusive
/// `&mut` access — with the calls spread across up to `threads` lanes of
/// the persistent [`WorkerPool`](crate::pool::WorkerPool) consuming an
/// atomic work queue (the same discipline as the ratio-interval queue:
/// workers claim the next unclaimed index, so an uneven workload never
/// idles a worker while items remain). Results come back in item order.
/// With `threads == 1` (or a single item) everything runs inline on the
/// caller's thread — no tasks, no locks on the hot path — which is what
/// makes this usable as the *only* apply path of `dds-shard`'s
/// edge-partitioned engine: `K = 1` is the serial baseline, not a
/// separate code path.
///
/// # Panics
/// Panics if `threads == 0`, or if `f` panics on any worker.
pub fn for_each_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    assert!(threads > 0, "need at least one worker");
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    // Each item sits behind its own mutex purely to hand `&mut` across the
    // pool safely; the atomic queue guarantees every index is claimed by
    // exactly one lane, so the locks are uncontended by construction.
    let slots: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
    let results: Vec<Mutex<Option<R>>> = slots.iter().map(|_| Mutex::new(None)).collect();
    crate::pool::WorkerPool::global().run_indexed(workers, slots.len(), &|i| {
        let mut item = slots[i].lock().expect("slot poisoned");
        let out = f(i, &mut item);
        *results[i].lock().expect("result poisoned") = Some(out);
    });
    results
        .into_iter()
        .map(|r| {
            r.into_inner()
                .expect("result poisoned")
                .expect("work queue left an item unvisited")
        })
        .collect()
}

/// Parallel [`DcExact`](crate::DcExact) with throwaway state: the ratio
/// work queue is consumed by `threads` workers.
///
/// # Panics
/// Panics if `threads == 0`.
#[must_use]
pub fn dc_exact_parallel(g: &DiGraph, threads: usize) -> ExactReport {
    dc_exact_parallel_with(
        &mut SolveContext::new(),
        g,
        ExactOptions::default(),
        threads,
    )
}

/// Parallel exact solve on a reusable [`SolveContext`] with explicit
/// options — the full-control entry point (the stream engine and the
/// benchmarks use it).
///
/// # Panics
/// Panics if `threads == 0`.
#[must_use]
pub fn dc_exact_parallel_with(
    ctx: &mut SolveContext,
    g: &DiGraph,
    options: ExactOptions,
    threads: usize,
) -> ExactReport {
    assert!(threads > 0, "need at least one worker");
    run_with_context(g, options, ctx, threads)
}

/// The sketch tier's escalation entry point: an exact solve of a retained
/// subgraph `H ⊆ G` on a warm context.
///
/// The result is the exact optimum **of the sketch**. Because every edge
/// of `H` is an edge of `G`, the winning pair's `H`-density is a certified
/// lower bound on `ρ_opt(G)` for any supergraph `G` — which is the whole
/// contract of exact-on-sketch escalation: `H` is small by construction
/// (the sketch's state bound), so paying the full exact machinery here is
/// cheap, and the warm context amortises arenas and the core memo across
/// consecutive refreshes of a slowly-drifting sketch.
///
/// # Panics
/// Panics if `threads == 0`.
#[must_use]
pub fn exact_on_sketch(ctx: &mut SolveContext, g: &DiGraph, threads: usize) -> ExactReport {
    dc_exact_parallel_with(ctx, g, ExactOptions::default(), threads)
}

/// Parallel [`GridPeel`]: identical output, grid points spread over
/// `threads` workers.
///
/// # Panics
/// Panics if `threads == 0` or `epsilon` is not positive.
#[must_use]
pub fn grid_peel_parallel(g: &DiGraph, epsilon: f64, threads: usize) -> PeelResult {
    assert!(threads > 0, "need at least one worker");
    let grid = GridPeel::new(epsilon).grid(g.n());
    let ratios_tried = grid.len();
    if grid.is_empty() {
        return PeelResult {
            solution: DdsSolution::empty(),
            ratios_tried,
        };
    }
    let workers = threads.min(grid.len());
    let chunk_size = grid.len().div_ceil(workers);
    let mut chunks: Vec<&[f64]> = grid.chunks(chunk_size).collect();
    let locals = for_each_mut(&mut chunks, workers, |_, chunk| {
        let mut best = DdsSolution::empty();
        for &c in chunk.iter() {
            best.improve_to(peel_at_f64_ratio(g, c));
        }
        best
    });
    let mut best = DdsSolution::empty();
    for local in locals {
        best.improve_to(local);
    }
    PeelResult {
        solution: best,
        ratios_tried,
    }
}

/// One orientation-chunk of the parallel max-product sweep: thresholds
/// `x ∈ [lo, hi]` on graph `g` (already transposed for the reverse
/// orientation). Returns the best `(x, y, mask)` in the chunk.
fn sweep_chunk(g: &DiGraph, lo: u64, hi: u64) -> Option<(u64, u64, StMask)> {
    let mut base = StMask::full(g.n());
    let mut best: Option<(u64, u64, StMask)> = None;
    let mut first = true;
    for x in lo..=hi {
        // Nested bases inside the chunk; the first peel jumps straight to
        // threshold `lo`.
        base = xy_core_within(g, &base, if first { lo } else { x }, 1);
        first = false;
        if base.is_empty() {
            break;
        }
        let Some(r) = y_max_core(g, &base, x) else {
            break;
        };
        let product = x * r.y;
        if best.as_ref().is_none_or(|(bx, by, _)| product > bx * by) {
            best = Some((x, r.y, r.mask));
        }
        // Within-chunk early stop mirrors the sequential sweep.
        if hi.saturating_mul(r.y) <= best.as_ref().map_or(0, |(bx, by, _)| bx * by) {
            break;
        }
    }
    best
}

/// Parallel `core_approx`: same certified 2-approximation, the two `√m`
/// sweeps chunked across `threads` workers.
///
/// # Panics
/// Panics if `threads == 0`.
#[must_use]
pub fn core_approx_parallel(g: &DiGraph, threads: usize) -> CoreApproxResult {
    assert!(threads > 0, "need at least one worker");
    if g.m() == 0 {
        return crate::core_approx(g);
    }
    let limit = (isqrt(g.m() as u128) as u64).max(1);
    let rev = g.reverse();

    // Split 1..=limit into contiguous chunks per orientation.
    let per_orientation = threads.div_ceil(2).max(1);
    let chunk = limit.div_ceil(per_orientation as u64).max(1);
    let mut tasks: Vec<(bool, u64, u64)> = Vec::new();
    for k in 0..per_orientation as u64 {
        let lo = 1 + k * chunk;
        if lo > limit {
            break;
        }
        let hi = (lo + chunk - 1).min(limit);
        tasks.push((false, lo, hi));
        tasks.push((true, lo, hi));
    }

    let results = for_each_mut(&mut tasks, threads, |_, &mut (reversed, lo, hi)| {
        let graph = if reversed { &rev } else { g };
        sweep_chunk(graph, lo, hi).map(|(x, y, mask)| (reversed, x, y, mask))
    });

    let mut best: Option<(u64, u64, StMask)> = None;
    for r in results.into_iter().flatten() {
        let (reversed, x, y, mask) = r;
        // Reverse-orientation results swap sides and thresholds back.
        let (x, y, mask) = if reversed {
            (
                y,
                x,
                StMask {
                    in_s: mask.in_t,
                    in_t: mask.in_s,
                },
            )
        } else {
            (x, y, mask)
        };
        if best.as_ref().is_none_or(|(bx, by, _)| x * y > bx * by) {
            best = Some((x, y, mask));
        }
    }

    match best {
        None => crate::core_approx(g), // degenerate; sequential handles it
        Some((x, y, mask)) => {
            let solution = DdsSolution::from_pair(g, mask.to_pair());
            let root = ((x * y) as f64).sqrt();
            CoreApproxResult {
                solution,
                x,
                y,
                lower_bound: root,
                upper_bound: 2.0 * root,
                sweep_evals: 0, // not meaningful across workers
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{core_approx, DcExact, GridPeel};
    use dds_graph::gen;

    #[test]
    fn parallel_exact_matches_serial_on_varied_graphs() {
        let graphs = [
            gen::gnm(24, 100, 3),
            gen::power_law(40, 220, 2.2, 7),
            gen::planted(40, 80, 4, 5, 1.0, 2).graph,
        ];
        for (i, g) in graphs.iter().enumerate() {
            let serial = DcExact::new().solve(g);
            for threads in [1, 2, 4] {
                let par = dc_exact_parallel(g, threads);
                assert_eq!(
                    par.solution.density, serial.solution.density,
                    "graph #{i} threads={threads}"
                );
                assert_eq!(par.solution.pair.density(g), par.solution.density);
            }
        }
    }

    #[test]
    fn parallel_exact_on_a_warm_context_stays_correct() {
        let g1 = gen::gnm(20, 80, 5);
        let g2 = gen::power_law(30, 150, 2.3, 5);
        let mut ctx = SolveContext::new();
        for g in [&g1, &g2, &g1] {
            let par = dc_exact_parallel_with(&mut ctx, g, ExactOptions::default(), 3);
            let fresh = DcExact::new().solve(g);
            assert_eq!(par.solution.density, fresh.solution.density);
        }
        assert_eq!(ctx.solves(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn parallel_exact_rejects_zero_threads() {
        let _ = dc_exact_parallel(&gen::path(3), 0);
    }

    #[test]
    fn parallel_grid_peel_matches_sequential() {
        let g = gen::power_law(150, 900, 2.2, 21);
        let seq = GridPeel::new(0.2).solve(&g);
        for threads in [1, 2, 4, 7] {
            let par = grid_peel_parallel(&g, 0.2, threads);
            assert_eq!(
                par.solution.density, seq.solution.density,
                "threads={threads}"
            );
            assert_eq!(par.ratios_tried, seq.ratios_tried);
        }
    }

    #[test]
    fn parallel_core_approx_matches_sequential_product() {
        for seed in [3u64, 14, 159] {
            let g = gen::gnm(120, 900, seed);
            let seq = core_approx(&g);
            for threads in [1, 2, 4] {
                let par = core_approx_parallel(&g, threads);
                // The maximum product is unique; the arg-max core need not
                // be, so compare the certified quantities rather than the
                // particular pair.
                assert_eq!(
                    par.x * par.y,
                    seq.x * seq.y,
                    "seed={seed} threads={threads}"
                );
                assert!(par.solution.density.to_f64() >= par.lower_bound - 1e-9);
                assert!(!par.solution.pair.is_empty());
            }
        }
    }

    #[test]
    fn parallel_handles_fixtures_and_degenerates() {
        let g = gen::complete_bipartite(2, 3);
        let par = core_approx_parallel(&g, 4);
        assert_eq!(par.solution.density, core_approx(&g).solution.density);
        let empty = DiGraph::empty(4);
        assert!(core_approx_parallel(&empty, 2).solution.pair.is_empty());
        assert!(grid_peel_parallel(&empty, 0.5, 3).solution.pair.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = grid_peel_parallel(&gen::path(3), 0.5, 0);
    }

    #[test]
    fn for_each_mut_visits_every_item_once_in_order() {
        for threads in [1, 2, 3, 8] {
            let mut items: Vec<u64> = (0..23).collect();
            let results = for_each_mut(&mut items, threads, |i, item| {
                *item += 100;
                (i, *item)
            });
            assert_eq!(results.len(), 23, "threads={threads}");
            for (i, &(idx, val)) in results.iter().enumerate() {
                assert_eq!(idx, i, "results must come back in item order");
                assert_eq!(val, i as u64 + 100);
            }
            assert!(items.iter().enumerate().all(|(i, &v)| v == i as u64 + 100));
        }
    }

    #[test]
    fn for_each_mut_handles_empty_and_single() {
        let mut none: Vec<u32> = Vec::new();
        assert!(for_each_mut(&mut none, 4, |_, _| ()).is_empty());
        let mut one = vec![7u32];
        let r = for_each_mut(&mut one, 4, |_, item| {
            *item *= 2;
            *item
        });
        assert_eq!((r, one[0]), (vec![14], 14));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn for_each_mut_rejects_zero_threads() {
        let _ = for_each_mut(&mut [1], 0, |_, _: &mut i32| ());
    }

    use dds_graph::DiGraph;
}
