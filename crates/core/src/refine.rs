//! Component refinement of candidate pairs.
//!
//! If the edge structure of a pair `(S, T)` splits into several connected
//! pieces, the densest piece is at least as dense as the whole:
//! with components `(E_i, s_i, t_i)` and `q_i = sqrt(s_i·t_i)`,
//! Cauchy–Schwarz gives `Σq_i ≤ sqrt(Σs_i · Σt_i)`, so
//!
//! ```text
//! max_i E_i/q_i  ≥  ΣE_i / Σq_i  ≥  E / sqrt(s·t)
//! ```
//!
//! (the middle step is the mediant inequality). Solvers therefore lose
//! nothing by reporting a connected answer, and downstream users usually
//! want one — a community/fraud-ring answer spanning two unrelated
//! subgraphs is an artefact, not a finding.

use dds_graph::{DiGraph, Pair, VertexId};

/// Splits `pair` into the weakly connected components of its `S → T` edge
/// structure and returns the densest one (ties: first found). Vertices of
/// the pair that touch no `S → T` edge form degenerate components and are
/// dropped — removing them never decreases density.
///
/// Returns the empty pair when the input has no `S → T` edges at all.
///
/// The component graph treats the *roles* as nodes: a vertex in `S ∩ T`
/// contributes an S-role and a T-role that may land in different
/// components.
#[must_use]
pub fn refine_to_component(g: &DiGraph, pair: &Pair) -> Pair {
    if pair.is_empty() {
        return pair.clone();
    }
    let n = g.n();
    let mut in_s = vec![false; n];
    let mut in_t = vec![false; n];
    for &u in pair.s() {
        in_s[u as usize] = true;
    }
    for &v in pair.t() {
        in_t[v as usize] = true;
    }

    // Union-find over role-nodes: S-role of v = v, T-role of v = n + v.
    let mut parent: Vec<u32> = (0..2 * n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for &u in pair.s() {
        for &v in g.out_neighbors(u) {
            if in_t[v as usize] {
                let ru = find(&mut parent, u);
                let rv = find(&mut parent, n as u32 + v);
                if ru != rv {
                    parent[ru as usize] = rv;
                }
            }
        }
    }

    // Accumulate per-component S/T members and edge counts.
    use std::collections::HashMap;
    let mut comps: HashMap<u32, (Vec<VertexId>, Vec<VertexId>, u64)> = HashMap::new();
    for &u in pair.s() {
        let d = g
            .out_neighbors(u)
            .iter()
            .filter(|&&v| in_t[v as usize])
            .count() as u64;
        if d > 0 {
            let root = find(&mut parent, u);
            let entry = comps.entry(root).or_default();
            entry.0.push(u);
            entry.2 += d;
        }
    }
    for &v in pair.t() {
        let touched = g.in_neighbors(v).iter().any(|&u| in_s[u as usize]);
        if touched {
            let root = find(&mut parent, n as u32 + v);
            comps.entry(root).or_default().1.push(v);
        }
    }

    let mut best = Pair::new(Vec::new(), Vec::new());
    let mut best_density = dds_num::Density::ZERO;
    for (_, (s, t, edges)) in comps {
        if s.is_empty() || t.is_empty() {
            continue;
        }
        let d = dds_num::Density::new(edges, s.len() as u64, t.len() as u64);
        if d > best_density {
            best_density = d;
            best = Pair::new(s, t);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DcExact;
    use dds_graph::gen;

    #[test]
    fn splits_disconnected_pairs_and_keeps_the_denser_piece() {
        // K_{2,2} (density 2) ⊎ single edge (density 1), one pair over both.
        let g = DiGraph::from_edges(6, &[(0, 2), (0, 3), (1, 2), (1, 3), (4, 5)]).unwrap();
        let pair = Pair::new(vec![0, 1, 4], vec![2, 3, 5]);
        assert_eq!(pair.density(&g).to_f64(), 5.0 / 3.0);
        let refined = refine_to_component(&g, &pair);
        assert_eq!(refined.s(), &[0, 1]);
        assert_eq!(refined.t(), &[2, 3]);
        assert!(refined.density(&g) > pair.density(&g));
    }

    #[test]
    fn connected_pairs_are_unchanged() {
        let g = gen::complete_bipartite(3, 4);
        let pair = Pair::new(vec![0, 1, 2], vec![3, 4, 5, 6]);
        assert_eq!(refine_to_component(&g, &pair), pair);
    }

    #[test]
    fn untouched_vertices_are_dropped() {
        // K_{2,2} plus an isolated vertex stuffed into both sides.
        let g = DiGraph::from_edges(5, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
        let padded = Pair::new(vec![0, 1, 4], vec![2, 3, 4]);
        let refined = refine_to_component(&g, &padded);
        assert_eq!(refined, Pair::new(vec![0, 1], vec![2, 3]));
    }

    #[test]
    fn refinement_never_hurts_on_random_pairs() {
        for seed in 0..10 {
            let g = gen::gnm(15, 45, seed);
            let pair = Pair::new((0..8).collect(), (4..13).collect());
            let refined = refine_to_component(&g, &pair);
            if !refined.is_empty() {
                assert!(refined.density(&g) >= pair.density(&g), "seed={seed}");
            } else {
                assert!(pair.density(&g).is_zero(), "seed={seed}");
            }
        }
    }

    #[test]
    fn exact_optimum_is_already_refined() {
        for seed in 0..6 {
            let g = gen::gnm(10, 30, seed);
            let sol = DcExact::new().solve(&g).solution;
            if sol.pair.is_empty() {
                continue;
            }
            let refined = refine_to_component(&g, &sol.pair);
            assert_eq!(
                refined.density(&g),
                sol.density,
                "seed={seed}: refinement must not beat a true optimum"
            );
        }
    }

    #[test]
    fn split_roles_of_overlapping_vertices() {
        // 0→1, 1→0: pair ({0,1},{0,1}) — roles 0_S,1_T connect; 1_S,0_T
        // connect; two components of density 1/1 each... wait: each
        // component has one S-role and one T-role with one edge: 1/√1 = 1,
        // the same as the combined 2/√4 = 1. Either is acceptable; the
        // refined pair must be one of the single edges or the whole.
        let g = DiGraph::from_edges(2, &[(0, 1), (1, 0)]).unwrap();
        let pair = Pair::new(vec![0, 1], vec![0, 1]);
        let refined = refine_to_component(&g, &pair);
        assert_eq!(refined.density(&g).to_f64(), 1.0);
    }

    #[test]
    fn empty_inputs() {
        let g = gen::path(3);
        let empty = Pair::new(vec![], vec![]);
        assert_eq!(refine_to_component(&g, &empty), empty);
        // Pair with no S→T edges collapses to the empty pair.
        let no_edges = Pair::new(vec![2], vec![0]);
        assert!(refine_to_component(&g, &no_edges).is_empty());
    }

    use dds_graph::DiGraph;
}
