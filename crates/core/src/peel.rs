//! Greedy peeling at a fixed `|S|/|T|` ratio — the kernel of the
//! Charikar/Khuller–Saha-style approximation algorithms.
//!
//! Given a target ratio `c`, the peel repeatedly removes the cheapest
//! vertex: when `|S| ≥ c·|T|` the S-vertex with minimum current out-degree
//! into `T`, otherwise the T-vertex with minimum current in-degree from
//! `S`. The densest intermediate state is returned.
//!
//! **Guarantee** (classic, re-derived): run at the optimum's own ratio
//! `c* = |S*|/|T*|`, the best intermediate state has `ρ ≥ ρ_opt / 2`.
//! *Sketch:* consider the first step that removes a vertex of the optimal
//! pair; just before it, every S-vertex of the current state has out-degree
//! `≥ ρ_opt·√(t*/s*)/2`-ish and symmetric on T (by the optimum's
//! local-optimality degree bounds), so the current state's density is at
//! least half the optimum's. Since `c*` is unknown, callers sweep ratios:
//! every candidate (`ExhaustivePeel`, 2-approx) or a geometric grid
//! (`GridPeel`, `2(1+ε)`-approx because the grid point nearest `c*`
//! distorts the weighting by at most `(1+ε)`).
//!
//! Cost per peel: `O(n + m + d_max)` using bucket queues over current
//! degrees and a removal log that lets the best state be reconstructed
//! without per-step snapshots.

use dds_graph::{DiGraph, StMask, VertexId};
use dds_num::Density;

use crate::DdsSolution;

/// Peels at the rational ratio `a/b`, comparing `|S|·b ≥ a·|T|` exactly.
///
/// # Panics
/// Panics if `a == 0` or `b == 0`.
#[must_use]
pub fn peel_at_rational_ratio(g: &DiGraph, a: u64, b: u64) -> DdsSolution {
    assert!(a > 0 && b > 0, "ratio components must be positive");
    peel(g, |s, t| {
        u128::from(s) * u128::from(b) >= u128::from(a) * u128::from(t)
    })
}

/// Peels at an arbitrary positive ratio `c` (used for geometric grids where
/// `c` is irrational; the side comparison is done in `f64`).
///
/// # Panics
/// Panics unless `c` is finite and positive.
#[must_use]
pub fn peel_at_f64_ratio(g: &DiGraph, c: f64) -> DdsSolution {
    assert!(
        c.is_finite() && c > 0.0,
        "ratio must be finite and positive"
    );
    peel(g, move |s, t| s as f64 >= c * t as f64)
}

/// Bucket queue over current degrees with lazy (stale-tolerant) entries.
struct BucketQueue {
    buckets: Vec<Vec<VertexId>>,
    min: usize,
}

impl BucketQueue {
    fn new(max_degree: usize) -> Self {
        BucketQueue {
            buckets: vec![Vec::new(); max_degree + 1],
            min: 0,
        }
    }

    fn push(&mut self, v: VertexId, degree: usize) {
        self.buckets[degree].push(v);
        self.min = self.min.min(degree);
    }

    /// Pops the entry with the smallest *valid* degree; `is_current`
    /// rejects stale entries (vertex removed or degree since decreased).
    fn pop_min(
        &mut self,
        is_current: impl Fn(VertexId, usize) -> bool,
    ) -> Option<(VertexId, usize)> {
        while self.min < self.buckets.len() {
            while let Some(v) = self.buckets[self.min].pop() {
                if is_current(v, self.min) {
                    return Some((v, self.min));
                }
            }
            self.min += 1;
        }
        None
    }
}

fn peel(g: &DiGraph, prefer_s: impl Fn(u64, u64) -> bool) -> DdsSolution {
    let n = g.n();
    if n == 0 || g.m() == 0 {
        return DdsSolution::empty();
    }

    let mut alive = StMask::full(n);
    let mut deg_out = vec![0usize; n];
    let mut deg_in = vec![0usize; n];
    for u in 0..n as VertexId {
        deg_out[u as usize] = g.out_degree(u);
        deg_in[u as usize] = g.in_degree(u);
    }
    let mut s_queue = BucketQueue::new(g.max_out_degree());
    let mut t_queue = BucketQueue::new(g.max_in_degree());
    for v in 0..n as VertexId {
        s_queue.push(v, deg_out[v as usize]);
        t_queue.push(v, deg_in[v as usize]);
    }

    let mut s_count = n as u64;
    let mut t_count = n as u64;
    let mut edges = g.m() as u64;

    // Removal log: (was_t_side, vertex), replayed to rebuild the best state.
    let mut removals: Vec<(bool, VertexId)> = Vec::with_capacity(2 * n);
    let mut best_density = Density::new(edges, s_count, t_count);
    let mut best_prefix = 0usize;

    while s_count > 0 && t_count > 0 {
        if prefer_s(s_count, t_count) {
            let (u, d) = s_queue
                .pop_min(|v, d| alive.in_s[v as usize] && deg_out[v as usize] == d)
                .expect("a live S vertex must exist while s_count > 0");
            alive.in_s[u as usize] = false;
            s_count -= 1;
            edges -= d as u64;
            removals.push((false, u));
            for &v in g.out_neighbors(u) {
                let v_us = v as usize;
                if alive.in_t[v_us] {
                    deg_in[v_us] -= 1;
                    t_queue.push(v, deg_in[v_us]);
                }
            }
        } else {
            let (v, d) = t_queue
                .pop_min(|w, d| alive.in_t[w as usize] && deg_in[w as usize] == d)
                .expect("a live T vertex must exist while t_count > 0");
            alive.in_t[v as usize] = false;
            t_count -= 1;
            edges -= d as u64;
            removals.push((true, v));
            for &u in g.in_neighbors(v) {
                let u_us = u as usize;
                if alive.in_s[u_us] {
                    deg_out[u_us] -= 1;
                    s_queue.push(u, deg_out[u_us]);
                }
            }
        }
        if s_count > 0 && t_count > 0 {
            let d = Density::new(edges, s_count, t_count);
            if d > best_density {
                best_density = d;
                best_prefix = removals.len();
            }
        }
    }

    // Rebuild the best state: full masks minus the first `best_prefix`
    // removals.
    let mut mask = StMask::full(n);
    for &(t_side, v) in &removals[..best_prefix] {
        if t_side {
            mask.in_t[v as usize] = false;
        } else {
            mask.in_s[v as usize] = false;
        }
    }
    let pair = mask.to_pair();
    debug_assert_eq!(
        pair.density(g),
        best_density,
        "log replay must match tracking"
    );
    DdsSolution {
        pair,
        density: best_density,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::brute_force_dds;
    use dds_graph::gen;

    #[test]
    fn finds_complete_bipartite_exactly() {
        // At the true ratio 2/3, peeling recovers the optimum exactly.
        let g = gen::complete_bipartite(2, 3);
        let sol = peel_at_rational_ratio(&g, 2, 3);
        assert_eq!(sol.density, Density::new(6, 2, 3));
    }

    #[test]
    fn star_at_its_own_ratio() {
        let g = gen::out_star(9);
        let sol = peel_at_rational_ratio(&g, 1, 9);
        assert_eq!(sol.density, Density::new(9, 1, 9));
    }

    #[test]
    fn half_approximation_holds_at_every_ratio() {
        for seed in 0..6 {
            let g = gen::gnm(8, 24, seed);
            let opt = brute_force_dds(&g).density;
            for (a, b) in [(1, 1), (1, 2), (2, 1), (1, 8), (8, 1), (3, 5)] {
                let got = peel_at_rational_ratio(&g, a, b).density;
                // Guarantee only binds at c*; in practice any single ratio
                // stays above ρ_opt/2 on these graphs only when c ≈ c*, so
                // check the *sweep* maximum instead.
                assert!(got <= opt, "peel cannot beat the optimum");
            }
            let sweep_best = dds_num::candidate_ratios(g.n() as u64)
                .iter()
                .map(|r| peel_at_rational_ratio(&g, r.a(), r.b()).density)
                .max()
                .unwrap();
            // 2·(sweep best) ≥ ρ_opt ⟺ 4·e²·s_o·t_o ≥ e_o²·s·t.
            let lhs = 4u128
                * u128::from(sweep_best.edges)
                * u128::from(sweep_best.edges)
                * u128::from(opt.s)
                * u128::from(opt.t);
            let rhs = u128::from(opt.edges)
                * u128::from(opt.edges)
                * u128::from(sweep_best.s)
                * u128::from(sweep_best.t);
            assert!(
                lhs >= rhs,
                "seed={seed}: sweep best {sweep_best} vs opt {opt}"
            );
        }
    }

    #[test]
    fn f64_ratio_matches_rational_on_exact_values() {
        let g = gen::gnm(30, 140, 11);
        for (a, b) in [(1u64, 1u64), (2, 1), (1, 3)] {
            let r = peel_at_rational_ratio(&g, a, b);
            let f = peel_at_f64_ratio(&g, a as f64 / b as f64);
            assert_eq!(r.density, f.density, "ratio {a}/{b}");
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        assert_eq!(
            peel_at_rational_ratio(&DiGraph::empty(0), 1, 1),
            DdsSolution::empty()
        );
        assert_eq!(
            peel_at_rational_ratio(&DiGraph::empty(5), 1, 1),
            DdsSolution::empty()
        );
    }

    #[test]
    fn isolated_vertices_are_peeled_first() {
        // K_{2,2} plus two isolated vertices: the best state excludes them.
        let g = DiGraph::from_edges(6, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
        let sol = peel_at_rational_ratio(&g, 1, 1);
        assert_eq!(sol.density, Density::new(4, 2, 2));
        assert_eq!(sol.pair.s(), &[0, 1]);
        assert_eq!(sol.pair.t(), &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_ratio() {
        let _ = peel_at_rational_ratio(&gen::path(3), 0, 1);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_nan_ratio() {
        let _ = peel_at_f64_ratio(&gen::path(3), f64::NAN);
    }
}
