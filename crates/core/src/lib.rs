//! Directed densest subgraph discovery (DDS).
//!
//! This crate implements the algorithm suite of *"Efficient Algorithms for
//! Densest Subgraph Discovery on Large Directed Graphs"* (SIGMOD 2020) —
//! reconstructed from the problem statement and contributions of that paper
//! (see the workspace `DESIGN.md` for the provenance note): given a directed
//! graph `G`, find the pair `(S, T)` maximising the Kannan–Vinay density
//!
//! ```text
//! ρ(S, T) = |E(S, T)| / sqrt(|S| · |T|)
//! ```
//!
//! # Solvers
//!
//! | Solver | Kind | Guarantee | Cost (per `DESIGN.md`) |
//! |---|---|---|---|
//! | [`DcExact`] | exact | optimal | few flow calls on core-shrunk networks |
//! | [`FlowExact`] | exact baseline | optimal | `Θ(n²)` ratio searches |
//! | [`core_approx`] | approximation | `ρ ≥ ρ_opt / 2` | `O(√m · (n + m))` |
//! | [`GridPeel`] | approximation | `ρ ≥ ρ_opt / (2(1+ε))` | `O((n+m)·log₁₊ε n)` |
//! | [`ExhaustivePeel`] | approximation baseline | `ρ ≥ ρ_opt / 2` | `Θ(n²)` peels |
//! | [`validate::brute_force_dds`] | ground truth | optimal | exponential (tiny `n`) |
//!
//! # The `SolveContext` pipeline
//!
//! The exact engine runs on a long-lived [`SolveContext`]
//! ([`DcExact::solve_with`]): per-worker flow arenas (Dinic buffers reset
//! between decisions, never reallocated), a memoised `[x, y]`-core table
//! keyed by the β-floor thresholds, and the incumbent witness threaded
//! from solve to solve. The ratio traversal is a work queue of
//! Stern–Brocot intervals consumed by one or more workers
//! ([`parallel::dc_exact_parallel`]); workers share the incumbent through
//! an **atomic density floor** (lock-free reads on the γ fast path, a
//! mutex only for the exact pair) and discard intervals whose certified
//! bound cannot *strictly* beat it — exact ties are resolved by a 384-bit
//! integer comparison rather than re-solved ([`ExactOptions::tie_pruning`]).
//! The context compares each solve's graph with the previous one and invalidates the
//! memoised cores when it changed, which is exactly what `dds-stream`'s
//! warm-started lazy re-solves rely on: the witness seed survives graph
//! mutation (revalidated), the core memo does not. Per-solve reuse shows
//! up in [`ExactReport::stats`] / [`SolveStats`].
//!
//! # The mathematics, in brief
//!
//! Proof sketches live on the items that use them; the load-bearing facts:
//!
//! 1. **Ratio discretisation.** Any optimum has `|S|/|T| = a/b` in lowest
//!    terms with `a, b ≤ n`, so the ratio space is the Farey set.
//! 2. **AM–GM linearisation.** For fixed ratio `c`,
//!    `sqrt(|S||T|) ≤ (|S|/√c + √c·|T|)/2` with equality iff the pair's
//!    ratio is exactly `c`; maximising the *weighted* objective
//!    `|E| − p|S| − q|T|` is a min-cut (see `dds-flow::decision`), and the
//!    maximum over all `c` of the weighted optimum equals `ρ_opt`.
//! 3. **Cores bound densities.** A non-empty `[x, y]`-core has
//!    `ρ ≥ sqrt(xy)`; conversely the DDS lies in a core with
//!    `x·y ≥ (ρ_opt/2)²` — giving the 2-approximation and the pruning.
//! 4. **Certificates transfer across ratios.** A failed cut at `(c, g)`
//!    proves `ρ(S,T) ≤ g·γ(c, c′)` for every pair of ratio `c′`, where
//!    `γ(c, c′) = (√(c′/c) + √(c/c′))/2` — letting the divide-and-conquer
//!    search prune entire ratio intervals with one flow.
//!
//! # Example
//!
//! ```
//! use dds_core::{DcExact, core_approx};
//! use dds_graph::DiGraph;
//!
//! // K_{2,2}: the optimum is (S, T) = ({0,1}, {2,3}) with ρ = 4/√4 = 2.
//! let g = DiGraph::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
//!
//! let exact = DcExact::new().solve(&g);
//! assert_eq!(exact.solution.density.to_f64(), 2.0);
//! assert_eq!(exact.solution.pair.s(), &[0, 1]);
//!
//! let approx = core_approx(&g);
//! assert!(2.0 * approx.solution.density.to_f64() >= 2.0); // ½-guarantee
//! assert!(approx.upper_bound >= 2.0);                     // certified bracket
//! ```

#![warn(missing_docs)]

mod approx;
mod exact;
pub mod parallel;
mod peel;
pub mod pool;
mod refine;
mod result;
mod topk;
pub mod validate;

pub use approx::{core_approx, CoreApproxResult, ExhaustivePeel, GridPeel, PeelResult};
pub use exact::{DcExact, ExactOptions, ExactReport, FlowExact, SolveContext};
pub use parallel::exact_on_sketch;
pub use peel::{peel_at_f64_ratio, peel_at_rational_ratio};
pub use pool::{auto_threads, PoolScope, PoolStats, WorkerPool};
pub use refine::refine_to_component;
pub use result::{DdsSolution, SolveStats};
pub use topk::{top_k_dense_pairs, TopKSolver};
