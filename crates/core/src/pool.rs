//! The persistent work-stealing worker pool behind every parallel path.
//!
//! Before this module existed, each parallel entry point
//! (`dc_exact_parallel_with`, `grid_peel_parallel`, `core_approx_parallel`,
//! `dds-shard`'s batch applies) re-spawned OS threads through its own
//! `thread::scope` block — measurably capping scaling at small batch sizes
//! (experiment E16) and leaving no way for the flow inner loop to borrow
//! idle workers. This module replaces all of them with **one** process-wide
//! pool ([`WorkerPool::global`], lazily sized from `available_parallelism`,
//! explicit sizes available for tests and embeddings):
//!
//! * **per-worker deques + a shared injector** — tasks spawned *by* a pool
//!   worker land on its own deque (cheap, cache-warm); tasks submitted from
//!   outside land on the injector; idle workers drain their deque, then the
//!   injector, then steal from siblings (counted in `dds_pool_steals_total`);
//! * **park/unpark** — out-of-work workers park on a condvar
//!   (`dds_pool_parks_total`) and are woken per submission, so an idle pool
//!   costs nothing;
//! * **scoped submission** — [`WorkerPool::scope`] lets callers spawn
//!   closures borrowing stack data (the lifetime is erased internally and
//!   re-proven by an unconditional join-before-return, the same contract as
//!   `std::thread::scope`); panics inside tasks propagate to the scope
//!   owner after all siblings finished;
//! * **two task kinds** — [`PoolScope::spawn`] submits *compute* tasks
//!   (run to completion without waiting on siblings: flow phases, peels,
//!   shard applies), [`PoolScope::spawn_worker`] submits tasks that may
//!   block waiting for work produced by their siblings (the exact interval
//!   workers). The distinction is what makes **helping** safe: a thread
//!   waiting for its own scope may execute any of its own tasks, and idle
//!   threads ([`WorkerPool::help_compute`]) may execute foreign *compute*
//!   tasks — but never a foreign worker task, which could park on a
//!   condvar that only its own siblings can signal and deadlock the
//!   helper.
//!
//! The scope owner always participates (it runs its own queued tasks while
//! joining), so every scope makes progress even when all pool threads are
//! busy — including on a single-core host where the global pool has zero
//! background threads and everything degenerates to the serial path.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use dds_flow::FlowExecutor;
use dds_obs::{Counter, Registry};

/// A lifetime-erased queued closure. The erasure is sound because every
/// spawning scope joins before returning (see [`WorkerPool::scope`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// How a task may interact with its siblings — see the module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskKind {
    /// Runs to completion without waiting on other pool tasks; safe for
    /// any thread to help with.
    Compute,
    /// May block waiting for work its scope siblings produce; only real
    /// pool workers and the task's own scope owner ever run it.
    Worker,
}

struct Task {
    job: Job,
    kind: TaskKind,
    scope: Arc<ScopeState>,
}

/// Join latch + panic slot of one [`PoolScope`].
struct ScopeState {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            remaining: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }
}

/// Lifetime counters (the `dds_pool_*` series): standalone by default,
/// re-homed into a registry by [`WorkerPool::attach_obs`].
struct PoolObs {
    tasks: Counter,
    steals: Counter,
    parks: Counter,
}

struct PoolInner {
    injector: Mutex<VecDeque<Task>>,
    deques: Vec<Mutex<VecDeque<Task>>>,
    park_lock: Mutex<()>,
    park_cond: Condvar,
    shutdown: AtomicBool,
    /// Rotating start index for stealing, so victims spread evenly.
    steal_from: AtomicUsize,
    obs: Mutex<PoolObs>,
}

thread_local! {
    /// `(pool identity, worker index + 1)` of the pool thread running this
    /// thread's code, or `(0, 0)` off-pool. Identity keys the *inner*
    /// allocation so distinct pools never mistake each other's workers.
    static WORKER: Cell<(usize, usize)> = const { Cell::new((0, 0)) };
    /// Re-entrancy guard for [`WorkerPool::help_compute`].
    static HELPING: Cell<bool> = const { Cell::new(false) };
}

impl PoolInner {
    fn identity(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    fn notify_one(&self) {
        // Taking the park lock orders this submission with any worker's
        // "queues are empty" re-check, so a wakeup is never lost.
        drop(self.park_lock.lock().expect("park lock poisoned"));
        self.park_cond.notify_one();
    }

    /// Queues a task: onto this worker's own deque when called from a pool
    /// thread of this very pool, onto the injector otherwise.
    fn submit(self: &Arc<Self>, task: Task) {
        let (pool_id, slot) = WORKER.get();
        if pool_id == self.identity() && slot > 0 {
            self.deques[slot - 1]
                .lock()
                .expect("deque poisoned")
                .push_back(task);
        } else {
            self.injector
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }
        self.notify_one();
    }

    /// Next task for worker `index`: own deque, then injector, then steal.
    fn find_task(&self, index: usize) -> Option<Task> {
        if let Some(t) = self.deques[index]
            .lock()
            .expect("deque poisoned")
            .pop_front()
        {
            return Some(t);
        }
        if let Some(t) = self.injector.lock().expect("injector poisoned").pop_front() {
            return Some(t);
        }
        let n = self.deques.len();
        let start = self.steal_from.fetch_add(1, Ordering::Relaxed);
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == index {
                continue;
            }
            if let Some(t) = self.deques[victim]
                .lock()
                .expect("deque poisoned")
                .pop_front()
            {
                self.obs.lock().expect("obs poisoned").steals.inc();
                return Some(t);
            }
        }
        None
    }

    /// Removes one queued task belonging to `scope` (any kind), scanning
    /// the injector and every deque. Used by the scope owner while joining.
    fn take_scope_task(&self, scope: &Arc<ScopeState>) -> Option<Task> {
        let mut q = self.injector.lock().expect("injector poisoned");
        if let Some(pos) = q.iter().position(|t| Arc::ptr_eq(&t.scope, scope)) {
            return q.remove(pos);
        }
        drop(q);
        for deque in &self.deques {
            let mut q = deque.lock().expect("deque poisoned");
            if let Some(pos) = q.iter().position(|t| Arc::ptr_eq(&t.scope, scope)) {
                return q.remove(pos);
            }
        }
        None
    }

    /// Removes one queued **compute** task from anywhere in the pool.
    fn take_compute_task(&self) -> Option<Task> {
        let mut q = self.injector.lock().expect("injector poisoned");
        if let Some(pos) = q.iter().position(|t| t.kind == TaskKind::Compute) {
            return q.remove(pos);
        }
        drop(q);
        for deque in &self.deques {
            let mut q = deque.lock().expect("deque poisoned");
            if let Some(pos) = q.iter().position(|t| t.kind == TaskKind::Compute) {
                return q.remove(pos);
            }
        }
        None
    }

    fn has_queued_work(&self) -> bool {
        if !self.injector.lock().expect("injector poisoned").is_empty() {
            return true;
        }
        self.deques
            .iter()
            .any(|d| !d.lock().expect("deque poisoned").is_empty())
    }

    /// Runs one task to completion, catching a panic into its scope's slot
    /// (first panic wins) and retiring it from the scope latch either way.
    fn execute(&self, task: Task) {
        self.obs.lock().expect("obs poisoned").tasks.inc();
        let result = catch_unwind(AssertUnwindSafe(task.job));
        if let Err(payload) = result {
            let mut slot = task.scope.panic.lock().expect("panic slot poisoned");
            slot.get_or_insert(payload);
        }
        let mut remaining = task.scope.remaining.lock().expect("latch poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            task.scope.done.notify_all();
        }
    }

    fn worker_loop(self: Arc<Self>, index: usize) {
        WORKER.set((self.identity(), index + 1));
        loop {
            if let Some(task) = self.find_task(index) {
                self.execute(task);
                continue;
            }
            let guard = self.park_lock.lock().expect("park lock poisoned");
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            if self.has_queued_work() {
                continue; // a submission raced our scan; retry
            }
            self.obs.lock().expect("obs poisoned").parks.inc();
            drop(self.park_cond.wait(guard).expect("park lock poisoned"));
        }
    }
}

/// Lifetime totals of a pool — see [`WorkerPool::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed.
    pub tasks: u64,
    /// Tasks a worker took from a sibling's deque.
    pub steals: u64,
    /// Times a worker parked for lack of work.
    pub parks: u64,
}

/// A persistent pool of worker threads; see the module docs. Most callers
/// want [`WorkerPool::global`].
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish_non_exhaustive()
    }
}

/// The parallelism the host advertises (≥ 1); what `--threads 0` and the
/// global pool size resolve through.
#[must_use]
pub fn auto_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl WorkerPool {
    /// A pool with `background` worker threads. Total usable parallelism
    /// ([`width`](WorkerPool::width)) is `background + 1`: the thread that
    /// opens a scope always participates, so `background == 0` is a valid
    /// (fully inline) pool.
    #[must_use]
    pub fn with_workers(background: usize) -> Self {
        let inner = Arc::new(PoolInner {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..background)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            park_lock: Mutex::new(()),
            park_cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            steal_from: AtomicUsize::new(0),
            obs: Mutex::new(PoolObs {
                tasks: Counter::standalone(),
                steals: Counter::standalone(),
                parks: Counter::standalone(),
            }),
        });
        let handles = (0..background)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dds-pool-{i}"))
                    .spawn(move || inner.worker_loop(i))
                    .expect("spawning a pool worker failed")
            })
            .collect();
        WorkerPool { inner, handles }
    }

    /// The process-wide pool, created on first use with
    /// `available_parallelism() - 1` background workers (the scope owner
    /// is the final lane). Never torn down.
    #[must_use]
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| WorkerPool::with_workers(auto_threads().saturating_sub(1)))
    }

    /// Maximum concurrency a scope on this pool can reach: the background
    /// workers plus the scope owner itself.
    #[must_use]
    pub fn width(&self) -> usize {
        self.handles.len() + 1
    }

    /// Lifetime counters (tasks, steals, parks).
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let obs = self.inner.obs.lock().expect("obs poisoned");
        PoolStats {
            tasks: obs.tasks.get(),
            steals: obs.steals.get(),
            parks: obs.parks.get(),
        }
    }

    /// Re-homes the pool's counters in `registry` as
    /// `dds_pool_tasks_total` / `dds_pool_steals_total` /
    /// `dds_pool_parks_total`, transferring the values accumulated so far
    /// (the same contract as `SolveContext::attach_obs`).
    pub fn attach_obs(&self, registry: &Registry) {
        let mut obs = self.inner.obs.lock().expect("obs poisoned");
        let transfer = |old: &mut Counter, name: &str| {
            let new = registry.counter(name);
            new.add(old.get());
            *old = new;
        };
        transfer(&mut obs.tasks, "dds_pool_tasks_total");
        transfer(&mut obs.steals, "dds_pool_steals_total");
        transfer(&mut obs.parks, "dds_pool_parks_total");
    }

    /// Runs `f` with a [`PoolScope`] through which it can spawn borrowing
    /// closures onto the pool, then joins **all** spawned tasks before
    /// returning (unconditionally — also when `f` or a task panics; the
    /// first panic is re-raised here once every sibling finished). While
    /// joining, the calling thread executes its own scope's queued tasks,
    /// so a scope completes even with zero free pool workers.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&PoolScope<'_, 'env>) -> R) -> R {
        let scope = PoolScope {
            pool: self,
            state: Arc::new(ScopeState::new()),
            _env: PhantomData,
        };
        let result = {
            let _join = JoinGuard {
                pool: self,
                state: Arc::clone(&scope.state),
            };
            f(&scope)
            // `_join` drops here: runs remaining own tasks, waits for the
            // rest — also during unwind if `f` panicked.
        };
        let panic = scope
            .state
            .panic
            .lock()
            .expect("panic slot poisoned")
            .take();
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        result
    }

    /// Executes one queued **compute** task on the calling thread, if any
    /// is available; returns whether it did. This is how otherwise-idle
    /// threads (e.g. exact interval workers with an empty queue) donate
    /// their cycles to the flow phases and batch applies of their
    /// neighbours. Never recurses: a helper already inside `help_compute`
    /// declines, and worker-kind tasks are never taken (they may park
    /// waiting for *their* siblings, which would strand the helper).
    pub fn help_compute(&self) -> bool {
        if HELPING.get() {
            return false;
        }
        let Some(task) = self.inner.take_compute_task() else {
            return false;
        };
        HELPING.set(true);
        self.inner.execute(task);
        HELPING.set(false);
        true
    }

    /// Fork/join over `count` indices with at most `parallelism`-way
    /// concurrency: claim-loop tasks pull indices from a shared atomic
    /// cursor (so uneven work never idles a lane) and the calling thread
    /// always runs one of the loops itself.
    pub fn run_indexed(&self, parallelism: usize, count: usize, f: &(dyn Fn(usize) + Sync)) {
        let lanes = parallelism.min(self.width()).min(count);
        if lanes <= 1 {
            for i in 0..count {
                f(i);
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        let claim = &cursor;
        let drain = move || loop {
            let i = claim.fetch_add(1, Ordering::Relaxed);
            if i >= count {
                return;
            }
            f(i);
        };
        self.scope(|s| {
            for _ in 1..lanes {
                s.spawn(drain);
            }
            drain();
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let _guard = self.inner.park_lock.lock().expect("park lock poisoned");
            self.inner.shutdown.store(true, Ordering::Release);
        }
        self.inner.park_cond.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The flow kernel's executor seam, backed by the pool: Dinic's parallel
/// BFS rounds and concurrent blocking-flow walkers run as compute tasks
/// (the caller participates, so a phase completes even on a saturated
/// pool).
impl FlowExecutor for WorkerPool {
    fn width(&self) -> usize {
        WorkerPool::width(self)
    }

    fn run(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        match tasks {
            0 => {}
            1 => f(0),
            _ => self.scope(|s| {
                for i in 1..tasks {
                    s.spawn(move || f(i));
                }
                f(0);
            }),
        }
    }
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`].
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> PoolScope<'_, 'env> {
    fn submit(&self, f: impl FnOnce() + Send + 'env, kind: TaskKind) {
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // Safety: the scope joins all tasks before `'env` data can go out
        // of scope (JoinGuard in `WorkerPool::scope` runs even on panic),
        // so erasing the lifetime cannot create a dangling borrow.
        let job: Job = unsafe { std::mem::transmute(job) };
        *self.state.remaining.lock().expect("latch poisoned") += 1;
        self.pool.inner.submit(Task {
            job,
            kind,
            scope: Arc::clone(&self.state),
        });
    }

    /// Spawns a **compute** task: it must run to completion without
    /// blocking on other pool tasks. Idle threads may help execute it.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'env) {
        self.submit(f, TaskKind::Compute);
    }

    /// Spawns a **worker** task: one that may park waiting for work its
    /// scope siblings produce (the exact interval workers). Only real pool
    /// threads and this scope's owner will execute it.
    pub fn spawn_worker(&self, f: impl FnOnce() + Send + 'env) {
        self.submit(f, TaskKind::Worker);
    }
}

/// Joins the scope on drop: runs the scope's still-queued tasks on this
/// thread, then waits for tasks other threads claimed.
struct JoinGuard<'pool> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
}

impl Drop for JoinGuard<'_> {
    fn drop(&mut self) {
        loop {
            // Drain everything of ours still queued anywhere.
            while let Some(task) = self.pool.inner.take_scope_task(&self.state) {
                self.pool.inner.execute(task);
            }
            // Nothing of ours is queued; the rest are running on real
            // workers and will retire themselves.
            let remaining = self.state.remaining.lock().expect("latch poisoned");
            if *remaining == 0 {
                return;
            }
            // Re-check the queues after waiting: a running task of ours
            // cannot spawn siblings (tasks get no scope handle), so a
            // wakeup with remaining > 0 only means claimed tasks are still
            // in flight.
            let (remaining, timeout) = self
                .state
                .done
                .wait_timeout(remaining, std::time::Duration::from_millis(1))
                .expect("latch poisoned");
            let _ = timeout;
            if *remaining == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_runs_borrowing_tasks_and_joins() {
        let pool = WorkerPool::with_workers(3);
        let mut data = vec![0u64; 64];
        {
            let slots: Vec<Mutex<&mut u64>> = data.iter_mut().map(Mutex::new).collect();
            let slots = &slots;
            pool.scope(|s| {
                for (i, slot) in slots.iter().enumerate() {
                    s.spawn(move || **slot.lock().unwrap() = i as u64 + 1);
                }
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
        assert!(pool.stats().tasks >= 64);
    }

    #[test]
    fn zero_worker_pool_runs_everything_inline() {
        let pool = WorkerPool::with_workers(0);
        assert_eq!(pool.width(), 1);
        let counter = AtomicUsize::new(0);
        pool.run_indexed(8, 100, &|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn run_indexed_visits_every_index_exactly_once() {
        let pool = WorkerPool::with_workers(4);
        for parallelism in [1, 2, 4, 16] {
            let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
            pool.run_indexed(parallelism, hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "parallelism={parallelism}"
            );
        }
    }

    #[test]
    fn panics_propagate_after_the_join() {
        let pool = WorkerPool::with_workers(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                for _ in 0..8 {
                    s.spawn(|| {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "task panic must reach the scope owner");
        assert_eq!(
            finished.load(Ordering::Relaxed),
            8,
            "siblings finish before the panic is re-raised"
        );
        // The pool survives the panic and keeps serving.
        let ran = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn nested_scopes_from_worker_tasks_complete() {
        // An outer scope whose tasks each open their own inner scope on
        // the same pool — the shape of an exact worker running parallel
        // Dinic phases. With more tasks than workers this exercises the
        // self-help path in the join guard.
        let pool = WorkerPool::with_workers(2);
        let total = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..6 {
                outer.spawn_worker(|| {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 24);
    }

    #[test]
    fn help_compute_runs_foreign_compute_but_never_worker_tasks() {
        let pool = WorkerPool::with_workers(0); // nothing drains but us
        let scope_state = Arc::new(ScopeState::new());
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        *scope_state.remaining.lock().unwrap() += 2;
        pool.inner.submit(Task {
            job: Box::new(move || {
                ran2.fetch_add(1, Ordering::Relaxed);
            }),
            kind: TaskKind::Worker,
            scope: Arc::clone(&scope_state),
        });
        let ran3 = Arc::clone(&ran);
        pool.inner.submit(Task {
            job: Box::new(move || {
                ran3.fetch_add(10, Ordering::Relaxed);
            }),
            kind: TaskKind::Compute,
            scope: Arc::clone(&scope_state),
        });
        assert!(pool.help_compute(), "the compute task is eligible");
        assert!(!pool.help_compute(), "the worker task is not");
        assert_eq!(ran.load(Ordering::Relaxed), 10);
        // Clean up the planted worker task so the latch is consistent.
        let t = pool.inner.take_scope_task(&scope_state).unwrap();
        pool.inner.execute(t);
        assert_eq!(ran.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn global_pool_exists_and_reports_stats() {
        let pool = WorkerPool::global();
        assert_eq!(pool.width(), auto_threads());
        let before = pool.stats().tasks;
        pool.run_indexed(4, 10, &|_| {});
        assert!(pool.stats().tasks >= before);
    }

    #[test]
    fn flow_executor_impl_runs_all_indices() {
        let pool = WorkerPool::with_workers(3);
        let hits: Vec<AtomicUsize> = (0..40).map(|_| AtomicUsize::new(0)).collect();
        FlowExecutor::run(&pool, hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(FlowExecutor::width(&pool), 4);
    }

    #[test]
    fn attach_obs_transfers_lifetime_totals() {
        let pool = WorkerPool::with_workers(1);
        pool.run_indexed(2, 8, &|_| {});
        let before = pool.stats();
        let registry = Registry::new();
        pool.attach_obs(&registry);
        assert_eq!(
            registry.counter_value("dds_pool_tasks_total"),
            Some(before.tasks)
        );
        pool.run_indexed(2, 8, &|_| {});
        assert!(registry.counter_value("dds_pool_tasks_total").unwrap() > before.tasks);
    }
}
