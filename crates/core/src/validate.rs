//! Ground-truth reference: exhaustive DDS by subset enumeration.
//!
//! Exponential in `n` — exists purely so the property-test suites can pin
//! the polynomial solvers against an answer whose correctness is beyond
//! doubt.

use dds_graph::{DiGraph, Pair, VertexId};
use dds_num::Density;

use crate::DdsSolution;

/// Maximum vertex count accepted by [`brute_force_dds`]: `4^16` pair
/// evaluations is the ceiling of what a test suite should spend.
pub const BRUTE_FORCE_MAX_N: usize = 16;

/// Exhaustively enumerates every non-empty `(S, T)` pair and returns a
/// densest one (`O(4ⁿ · n)` via per-vertex adjacency bitmasks).
///
/// # Panics
/// Panics if `g.n() > BRUTE_FORCE_MAX_N`.
#[must_use]
pub fn brute_force_dds(g: &DiGraph) -> DdsSolution {
    let n = g.n();
    assert!(
        n <= BRUTE_FORCE_MAX_N,
        "brute force is exponential; refusing n = {n} > {BRUTE_FORCE_MAX_N}"
    );
    if g.m() == 0 {
        return DdsSolution::empty();
    }

    // adj[u] — bitmask of u's out-neighbours.
    let adj: Vec<u32> = (0..n as VertexId)
        .map(|u| g.out_neighbors(u).iter().fold(0u32, |acc, &v| acc | 1 << v))
        .collect();

    let mut best_density = Density::ZERO;
    let mut best = (0u32, 0u32);
    for s_bits in 1u32..(1u32 << n) {
        let s_size = u64::from(s_bits.count_ones());
        for t_bits in 1u32..(1u32 << n) {
            let mut edges = 0u64;
            let mut rest = s_bits;
            while rest != 0 {
                let u = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                edges += u64::from((adj[u] & t_bits).count_ones());
            }
            let d = Density::new(edges, s_size, u64::from(t_bits.count_ones()));
            if d > best_density {
                best_density = d;
                best = (s_bits, t_bits);
            }
        }
    }

    let unpack = |bits: u32| (0..n as VertexId).filter(|&v| bits >> v & 1 == 1).collect();
    DdsSolution {
        pair: Pair::new(unpack(best.0), unpack(best.1)),
        density: best_density,
    }
}

/// Checks that a pair is *locally maximal*: removing any single vertex from
/// either side does not increase the density. Every global optimum is
/// locally maximal, so this is a cheap necessary condition used to sanity
/// check solver outputs on graphs too large for [`brute_force_dds`].
#[must_use]
pub fn is_locally_maximal(g: &DiGraph, pair: &Pair) -> bool {
    if pair.is_empty() {
        return false;
    }
    let base = pair.density(g);
    if pair.s().len() > 1 {
        for &drop in pair.s() {
            let reduced: Vec<VertexId> = pair.s().iter().copied().filter(|&v| v != drop).collect();
            if Pair::new(reduced, pair.t().to_vec()).density(g) > base {
                return false;
            }
        }
    }
    if pair.t().len() > 1 {
        for &drop in pair.t() {
            let reduced: Vec<VertexId> = pair.t().iter().copied().filter(|&v| v != drop).collect();
            if Pair::new(pair.s().to_vec(), reduced).density(g) > base {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_graph::gen;

    #[test]
    fn complete_bipartite_optimum() {
        let g = gen::complete_bipartite(2, 3);
        let sol = brute_force_dds(&g);
        assert_eq!(sol.density, Density::new(6, 2, 3));
        assert_eq!(sol.pair.s(), &[0, 1]);
        assert_eq!(sol.pair.t(), &[2, 3, 4]);
    }

    #[test]
    fn star_optimum_is_whole_star() {
        // ρ({0}, leaves) = k/√k = √k; any leaf subset does worse.
        let g = gen::out_star(4);
        let sol = brute_force_dds(&g);
        assert_eq!(sol.density, Density::new(4, 1, 4));
    }

    #[test]
    fn cycle_optimum_is_one() {
        let g = gen::cycle(5);
        let sol = brute_force_dds(&g);
        // (V, V) has 5/√25 = 1; a single edge has 1/√1 = 1 too. Optimum 1.
        assert_eq!(sol.density, Density::new(1, 1, 1));
    }

    #[test]
    fn single_edge() {
        let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
        let sol = brute_force_dds(&g);
        assert_eq!(sol.density, Density::new(1, 1, 1));
        assert_eq!(sol.pair.s(), &[0]);
        assert_eq!(sol.pair.t(), &[1]);
    }

    #[test]
    fn empty_graph_gives_empty_solution() {
        assert_eq!(brute_force_dds(&DiGraph::empty(4)), DdsSolution::empty());
        assert_eq!(brute_force_dds(&DiGraph::empty(0)), DdsSolution::empty());
    }

    #[test]
    #[should_panic(expected = "refusing")]
    fn oversized_input_rejected() {
        let _ = brute_force_dds(&DiGraph::empty(17));
    }

    #[test]
    fn optimum_is_locally_maximal() {
        for seed in 0..5 {
            let g = gen::gnm(7, 18, seed);
            let sol = brute_force_dds(&g);
            assert!(is_locally_maximal(&g, &sol.pair), "seed={seed}");
        }
    }

    #[test]
    fn local_maximality_rejects_padded_pairs() {
        // K_{2,3} plus an isolated vertex dragged into T.
        let g = DiGraph::from_edges(6, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]).unwrap();
        let padded = Pair::new(vec![0, 1], vec![2, 3, 4, 5]);
        assert!(!is_locally_maximal(&g, &padded));
        assert!(is_locally_maximal(
            &g,
            &Pair::new(vec![0, 1], vec![2, 3, 4])
        ));
    }
}
