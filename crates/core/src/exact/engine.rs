//! The exact-search driver: ratio-space traversal with pruning.
//!
//! Both exact solvers share one engine differing only in options:
//!
//! * [`FlowExact`] — the Khuller–Saha/Charikar-style baseline: solve
//!   **every** reduced ratio `a/b` (`a, b ≤ n`, `Θ(n²)` of them) by
//!   flow-based binary search. Correct because any optimum has such a
//!   ratio, and the per-ratio optimum at the true ratio *is* `ρ_opt`.
//! * [`DcExact`] — the paper's contribution: walk the Stern–Brocot tree of
//!   ratios (mediant-first), and prune whole subtrees with three devices:
//!
//!   1. **structural band** — a pair with ratio `c'` has
//!      `ρ ≤ min(d⁺max·√c', d⁻max/√c')` (each side's edges are bounded by
//!      its size times the opposite max degree), so intervals entirely
//!      outside `[ρ̃²/d⁺max², d⁻max²/ρ̃²]` are discarded with an exact
//!      rational comparison, and test ratios are jumped into the band;
//!   2. **γ transfer certificates** — a per-ratio certificate
//!      "`β*(c₀) ≤ u`" implies, for every pair of ratio `c'`,
//!      `ρ ≤ (u/√(a₀b₀))·γ(c₀, c')` with
//!      `γ(c, c') = (√(c'/c) + √(c/c'))/2`; an interval whose endpoints
//!      stay below the best density is pruned (computed in `f64` with a
//!      relative safety margin — pruning is *conservative*, never
//!      correctness-bearing);
//!   3. **floors and cores** — each per-ratio search starts at the β-image
//!      of the best density so far and runs its flows on
//!      `[⌈β/2a⌉, ⌈β/2b⌉]`-cores (see `per_ratio`), so late ratios cost
//!      little even when not pruned outright.
//!
//!   A warm start from [`core_approx`] seeds the best density at
//!   `≥ ρ_opt/2` before any flow runs.
//!
//! Subtree pruning is lossless for enumeration: every reduced ratio
//! strictly inside an interval is a Stern–Brocot descendant of the
//! *simplest* ratio inside it, and descent only grows both components, so
//! "simplest exceeds `n`" certifies the interval holds no candidate. The
//! solved ratio itself may be chosen anywhere inside the interval — by
//! default the simplest, but jumped into the structural density band when
//! that clips the interval (see [`choose_test_ratio`]) — because the two
//! child intervals still cover everything else.

use std::collections::VecDeque;

use dds_graph::DiGraph;
use dds_num::{candidate_ratios, simplest_between, Frac, Ratio};

use crate::approx::core_approx;
use crate::exact::per_ratio::solve_ratio;
use crate::DdsSolution;

/// Toggles for the exact engine (the ablation axes of experiment E4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExactOptions {
    /// Stern–Brocot divide-and-conquer instead of scanning all `Θ(n²)`
    /// ratios.
    pub divide_and_conquer: bool,
    /// Run each flow decision on the guess-derived `[x, y]`-core.
    pub core_pruning: bool,
    /// Prune ratio intervals with γ transfer certificates.
    pub gamma_pruning: bool,
    /// Seed the best density with `core_approx` before any flow.
    pub warm_start: bool,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            divide_and_conquer: true,
            core_pruning: true,
            gamma_pruning: true,
            warm_start: true,
        }
    }
}

/// Full outcome of an exact run: the optimum plus instrumentation for the
/// efficiency experiments (E2–E4).
#[derive(Clone, Debug)]
pub struct ExactReport {
    /// The optimal pair and its exact density.
    pub solution: DdsSolution,
    /// Ratio intervals examined (divide-and-conquer) or ratios listed
    /// (baseline).
    pub ratios_considered: usize,
    /// Ratios for which a per-ratio search actually ran.
    pub ratios_solved: usize,
    /// Intervals discarded by the structural density band.
    pub ratios_pruned_structural: usize,
    /// Intervals discarded by γ transfer certificates.
    pub ratios_pruned_gamma: usize,
    /// Total flow decisions executed.
    pub flow_decisions: usize,
    /// Flow-network node counts, one per decision in execution order
    /// (experiment E3 plots the shrinkage).
    pub network_nodes: Vec<usize>,
    /// Flow-network edge counts, aligned with `network_nodes`.
    pub network_edges: Vec<usize>,
    /// Density of the warm-start solution, when one was used.
    pub warm_start_density: Option<f64>,
}

impl ExactReport {
    fn new() -> Self {
        ExactReport {
            solution: DdsSolution::empty(),
            ratios_considered: 0,
            ratios_solved: 0,
            ratios_pruned_structural: 0,
            ratios_pruned_gamma: 0,
            flow_decisions: 0,
            network_nodes: Vec::new(),
            network_edges: Vec::new(),
            warm_start_density: None,
        }
    }
}

/// A certificate `β*(c₀) ≤ u` re-expressed as a density bound
/// `g₀ = u/√(a₀b₀)`, kept in `f64` with an upward safety margin.
#[derive(Clone, Copy, Debug)]
struct Certificate {
    c0: f64,
    g0: f64,
}

/// `γ(c, c') = (√(c'/c) + √(c/c'))/2`; `∞` at the virtual endpoints.
fn gamma(c0: f64, c_prime: f64) -> f64 {
    if c_prime <= 0.0 || c_prime.is_infinite() {
        return f64::INFINITY;
    }
    0.5 * ((c_prime / c0).sqrt() + (c0 / c_prime).sqrt())
}

/// Relative margin applied to every f64 pruning comparison; densities and
/// γ values carry ~1e-15 relative error, so 1e-9 is vastly conservative.
const PRUNE_MARGIN: f64 = 1e-9;

fn gamma_prunes(certs: &[Certificate], cl: Ratio, cr: Ratio, best: f64) -> bool {
    if best <= 0.0 {
        return false;
    }
    let (cl_f, cr_f) = (cl.to_f64(), cr.to_f64());
    certs.iter().any(|cert| {
        let ub = cert.g0 * gamma(cert.c0, cl_f).max(gamma(cert.c0, cr_f));
        ub * (1.0 + PRUNE_MARGIN) <= best * (1.0 - PRUNE_MARGIN)
    })
}

/// The simplest ratio (componentwise-minimal) strictly inside `(cl, cr)`;
/// endpoints may be the virtual `0` / `∞`. Every rational strictly inside
/// the interval is a Stern–Brocot descendant of this one, so its components
/// lower-bound all candidates inside — which makes "simplest exceeds `n`"
/// a sound emptiness certificate for the whole interval.
fn simplest_ratio_between(cl: Ratio, cr: Ratio) -> Ratio {
    if cr.is_infinite() {
        // Smallest integer strictly above cl.
        let next = if cl.is_zero() {
            1
        } else {
            u64::try_from(cl.as_frac().floor()).expect("ratio fits u64") + 1
        };
        return Ratio::new(next, 1);
    }
    let lo = if cl.is_zero() {
        Frac::ZERO
    } else {
        cl.as_frac()
    };
    let f = simplest_between(lo, cr.as_frac());
    Ratio::new(
        u64::try_from(f.num()).expect("positive numerator"),
        u64::try_from(f.den()).expect("positive denominator"),
    )
}

/// Picks the ratio to solve inside the open interval `(cl, cr)`, or `None`
/// when the interval provably holds no viable candidate ratio.
///
/// Default choice: the simplest ratio inside (for Stern–Brocot-neighbour
/// intervals this is the mediant). When the structural density band
/// `[ρ̃²/d⁺max², d⁻max²/ρ̃²]` clips the interval, the choice jumps straight
/// into the band — without this, a graph whose optimum sits at an extreme
/// ratio (e.g. a star, c* = 1/k) forces a linear walk down the tree spine
/// with one full ratio-solve per rung.
fn choose_test_ratio(
    cl: Ratio,
    cr: Ratio,
    best: &DdsSolution,
    d_out_max: u64,
    d_in_max: u64,
    n: u64,
) -> Option<Ratio> {
    let simplest = simplest_ratio_between(cl, cr);
    if simplest.a() > n || simplest.b() > n {
        return None; // no achievable ratio inside
    }
    if best.density.is_zero() {
        return Some(simplest);
    }
    // Clamp to the band (exact rationals; band endpoints are closed).
    let rho2 = best.density.squared();
    let band_lo = rho2 / Frac::new(i128::from(d_out_max) * i128::from(d_out_max), 1);
    let band_hi = Frac::new(i128::from(d_in_max) * i128::from(d_in_max), 1) / rho2;
    let lo = if cl.is_zero() {
        band_lo
    } else {
        band_lo.max(cl.as_frac())
    };
    let hi = if cr.is_infinite() {
        band_hi
    } else {
        band_hi.min(cr.as_frac())
    };
    let jump = if lo < hi {
        simplest_between(lo, hi)
    } else if lo == hi {
        lo // the band ∩ interval is a single (rational) point
    } else {
        return Some(simplest); // structurally dead; the caller's band check decides
    };
    let (num, den) = match (u64::try_from(jump.num()), u64::try_from(jump.den())) {
        (Ok(a), Ok(b)) => (a, b),
        _ => return Some(simplest),
    };
    if num == 0 || num > n || den > n {
        return Some(simplest);
    }
    let c = Ratio::new(num, den);
    if cl < c && c < cr {
        Some(c)
    } else {
        Some(simplest)
    }
}

/// Exact structural band check: no ratio strictly inside `(cl, cr)` can
/// reach the best density ρ̃.
///
/// A pair with ratio `c' = |S|/|T|` has `|E| ≤ |S|·d⁺max`, so
/// `ρ ≤ d⁺max·√c'` — prune when `(d⁺max)²·cr ≤ ρ̃²`. Symmetrically
/// `|E| ≤ |T|·d⁻max` gives `ρ ≤ d⁻max/√c'` — prune when
/// `(d⁻max)² ≤ ρ̃²·cl`. Both comparisons are exact rationals.
fn structurally_pruned(
    cl: Ratio,
    cr: Ratio,
    best: &DdsSolution,
    d_out_max: u64,
    d_in_max: u64,
) -> bool {
    if best.density.is_zero() {
        return false;
    }
    let rho2 = best.density.squared();
    let sq = |d: u64| Frac::new(i128::from(d) * i128::from(d), 1);
    if !cl.is_zero() && !cl.is_infinite() && sq(d_in_max) <= rho2 * cl.as_frac() {
        return true;
    }
    if !cr.is_infinite() && !cr.is_zero() && sq(d_out_max) * cr.as_frac() <= rho2 {
        return true;
    }
    false
}

fn run_exact(g: &DiGraph, opts: ExactOptions) -> ExactReport {
    let mut report = ExactReport::new();
    let n = g.n() as u64;
    let m = g.m() as u64;
    if m == 0 {
        return report;
    }
    let d_out_max = g.max_out_degree() as u64;
    let d_in_max = g.max_in_degree() as u64;

    if opts.warm_start {
        let warm = core_approx(g);
        report.warm_start_density = Some(warm.solution.density.to_f64());
        report.solution.improve_to(warm.solution);
    }

    // Tight certificates are only worth their extra flows when the
    // divide-and-conquer driver consumes them for γ-pruning.
    let tighten = opts.divide_and_conquer && opts.gamma_pruning;
    let solve_one = |a: u64, b: u64, report: &mut ExactReport| -> Frac {
        let floor = if report.solution.density.is_zero() {
            Frac::ZERO
        } else {
            report.solution.density.beta_lower_bound(a, b)
        };
        let seed = if report.solution.pair.is_empty() {
            None
        } else {
            Some(report.solution.pair.clone())
        };
        let outcome = solve_ratio(g, a, b, floor, opts.core_pruning, tighten, seed.as_ref());
        report.ratios_solved += 1;
        report.flow_decisions += outcome.decisions.len();
        for d in &outcome.decisions {
            report.network_nodes.push(d.nodes);
            report.network_edges.push(d.edges);
        }
        if let Some((pair, _)) = outcome.best {
            report.solution.improve_to(DdsSolution::from_pair(g, pair));
        }
        outcome.certified_upper
    };

    if opts.divide_and_conquer {
        let mut certs: Vec<Certificate> = Vec::new();
        let mut queue: VecDeque<(Ratio, Ratio)> = VecDeque::new();
        queue.push_back((Ratio::ZERO, Ratio::INFINITY));
        while let Some((cl, cr)) = queue.pop_front() {
            let Some(c) = choose_test_ratio(cl, cr, &report.solution, d_out_max, d_in_max, n)
            else {
                continue; // no achievable ratio remains inside (cl, cr)
            };
            report.ratios_considered += 1;
            if structurally_pruned(cl, cr, &report.solution, d_out_max, d_in_max) {
                report.ratios_pruned_structural += 1;
                continue;
            }
            if opts.gamma_pruning && gamma_prunes(&certs, cl, cr, report.solution.density.to_f64())
            {
                report.ratios_pruned_gamma += 1;
                continue;
            }
            let upper = solve_one(c.a(), c.b(), &mut report);
            let ab = (c.a() as f64) * (c.b() as f64);
            certs.push(Certificate {
                c0: c.to_f64(),
                g0: (upper.to_f64() / ab.sqrt()) * (1.0 + PRUNE_MARGIN),
            });
            queue.push_back((cl, c));
            queue.push_back((c, cr));
        }
    } else {
        assert!(
            g.n() <= 4096,
            "the all-ratios baseline enumerates Θ(n²) ratios; n = {} is too large — enable divide_and_conquer",
            g.n()
        );
        for r in candidate_ratios(n) {
            report.ratios_considered += 1;
            let _ = solve_one(r.a(), r.b(), &mut report);
        }
    }
    report
}

/// The `Θ(n²)`-ratio exact baseline (flow binary search at every candidate
/// ratio, no pruning devices). This is the algorithm the paper's exact
/// solver is benchmarked against; expect it to be orders of magnitude
/// slower than [`DcExact`] beyond toy sizes.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowExact;

impl FlowExact {
    /// Solves exactly. See [`ExactReport`].
    #[must_use]
    pub fn solve(&self, g: &DiGraph) -> ExactReport {
        run_exact(
            g,
            ExactOptions {
                divide_and_conquer: false,
                core_pruning: false,
                gamma_pruning: false,
                warm_start: false,
            },
        )
    }
}

/// The paper's exact solver: divide-and-conquer over the ratio space with
/// core-shrunk flow networks, γ certificates, and a `core_approx` warm
/// start. All devices can be toggled via [`ExactOptions`] for ablation.
#[derive(Clone, Copy, Debug, Default)]
pub struct DcExact {
    /// Engine toggles (all enabled by [`Default`]).
    pub options: ExactOptions,
}

impl DcExact {
    /// Solver with all optimisations enabled.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Solver with explicit toggles (ablation studies).
    #[must_use]
    pub fn with_options(options: ExactOptions) -> Self {
        DcExact { options }
    }

    /// Solves exactly. See [`ExactReport`].
    #[must_use]
    pub fn solve(&self, g: &DiGraph) -> ExactReport {
        run_exact(g, self.options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::brute_force_dds;
    use dds_graph::gen;
    use dds_num::Density;

    fn all_option_combos() -> Vec<ExactOptions> {
        let mut out = Vec::new();
        for dc in [false, true] {
            for core in [false, true] {
                for gamma in [false, true] {
                    for warm in [false, true] {
                        out.push(ExactOptions {
                            divide_and_conquer: dc,
                            core_pruning: core,
                            gamma_pruning: gamma,
                            warm_start: warm,
                        });
                    }
                }
            }
        }
        out
    }

    #[test]
    fn fixtures_have_known_optima() {
        let cases: Vec<(DiGraph, Density)> = vec![
            (gen::complete_bipartite(2, 3), Density::new(6, 2, 3)),
            (gen::out_star(4), Density::new(4, 1, 4)),
            (gen::cycle(5), Density::new(1, 1, 1)),
            (gen::path(4), Density::new(1, 1, 1)),
            (gen::complete_bipartite(3, 3), Density::new(9, 3, 3)),
        ];
        for (g, want) in cases {
            let got = DcExact::new().solve(&g);
            assert_eq!(got.solution.density, want);
            let base = FlowExact.solve(&g);
            assert_eq!(base.solution.density, want);
        }
    }

    #[test]
    fn every_option_combo_matches_brute_force() {
        for seed in 0..6 {
            let g = gen::gnm(7, 18, seed);
            let want = brute_force_dds(&g).density;
            for opts in all_option_combos() {
                let got = DcExact::with_options(opts).solve(&g);
                assert_eq!(got.solution.density, want, "seed={seed} opts={opts:?}");
                // The reported pair really has the reported density.
                assert_eq!(got.solution.pair.density(&g), got.solution.density);
            }
        }
    }

    #[test]
    fn dc_matches_baseline_on_medium_graphs() {
        for seed in 0..3 {
            let g = gen::gnm(22, 90, seed);
            let dc = DcExact::new().solve(&g);
            let base = FlowExact.solve(&g);
            assert_eq!(dc.solution.density, base.solution.density, "seed={seed}");
        }
        let g = gen::power_law(25, 110, 2.2, 1);
        assert_eq!(
            DcExact::new().solve(&g).solution.density,
            FlowExact.solve(&g).solution.density
        );
    }

    #[test]
    fn planted_block_recovered_exactly() {
        let p = gen::planted(60, 90, 4, 6, 1.0, 11);
        let got = DcExact::new().solve(&p.graph);
        // The planted complete block has density √24 ≈ 4.9; the sparse
        // background cannot beat it, and the solver must return at least
        // the planted density.
        assert!(got.solution.density >= p.pair.density(&p.graph));
        assert!(crate::validate::is_locally_maximal(
            &p.graph,
            &got.solution.pair
        ));
    }

    #[test]
    fn dc_solves_far_fewer_ratios_than_baseline() {
        // Uniform graphs are the flat-envelope worst case for γ-pruning;
        // expect a moderate factor there and a larger one on skewed
        // graphs (matching the paper's dataset-dependent gains).
        let g = gen::gnm(30, 160, 4);
        let dc = DcExact::new().solve(&g);
        let base = FlowExact.solve(&g);
        assert_eq!(dc.solution.density, base.solution.density);
        assert!(
            dc.ratios_solved * 4 < base.ratios_solved,
            "DC solved {} ratios vs baseline {}",
            dc.ratios_solved,
            base.ratios_solved
        );
        assert!(dc.flow_decisions < base.flow_decisions);

        let g = gen::power_law(60, 400, 2.2, 4);
        let dc = DcExact::new().solve(&g);
        let base = FlowExact.solve(&g);
        assert_eq!(dc.solution.density, base.solution.density);
        assert!(
            dc.ratios_solved * 10 < base.ratios_solved,
            "power-law: DC solved {} ratios vs baseline {}",
            dc.ratios_solved,
            base.ratios_solved
        );
        assert!(dc.flow_decisions * 5 < base.flow_decisions);
    }

    #[test]
    fn core_pruning_shrinks_networks_in_the_report() {
        let p = gen::planted(50, 120, 4, 5, 1.0, 9);
        let with = DcExact::new().solve(&p.graph);
        let without = DcExact::with_options(ExactOptions {
            core_pruning: false,
            ..ExactOptions::default()
        })
        .solve(&p.graph);
        assert_eq!(with.solution.density, without.solution.density);
        let max_with = with.network_nodes.iter().max().copied().unwrap_or(0);
        let max_without = without.network_nodes.iter().max().copied().unwrap_or(0);
        assert!(
            max_with <= max_without,
            "core pruning must not grow networks ({max_with} vs {max_without})"
        );
    }

    #[test]
    fn structural_band_prunes_extreme_ratios_on_stars() {
        // out_star(64): ρ_opt = 8 with c* = 1/64; d⁻max = 1 means any ratio
        // above (d⁻max/ρ̃)² = 1/64 is structurally hopeless, so almost the
        // whole Stern–Brocot tree dies without a single flow.
        let g = gen::out_star(64);
        let r = DcExact::new().solve(&g);
        assert_eq!(r.solution.density, Density::new(64, 1, 64));
        assert!(r.ratios_pruned_structural > 0, "band should fire");
        assert!(
            r.ratios_solved <= 8,
            "star should need only a handful of ratio solves, got {}",
            r.ratios_solved
        );
    }

    #[test]
    fn gamma_pruning_fires_and_preserves_the_answer() {
        let g = gen::power_law(60, 360, 2.2, 12);
        let with = DcExact::new().solve(&g);
        assert!(
            with.ratios_pruned_gamma > 0,
            "γ certificates should prune intervals"
        );
        let without = DcExact::with_options(ExactOptions {
            gamma_pruning: false,
            ..ExactOptions::default()
        })
        .solve(&g);
        assert_eq!(with.solution.density, without.solution.density);
        assert!(with.ratios_solved < without.ratios_solved);
    }

    #[test]
    fn warm_start_density_is_recorded_and_bounded() {
        let g = gen::power_law(40, 220, 2.3, 8);
        let r = DcExact::new().solve(&g);
        let warm = r.warm_start_density.expect("warm start enabled");
        assert!(warm <= r.solution.density.to_f64() + 1e-9);
        assert!(
            2.0 * warm >= r.solution.density.to_f64() - 1e-9,
            "2-approx warm start"
        );
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        assert_eq!(
            DcExact::new().solve(&DiGraph::empty(0)).solution,
            DdsSolution::empty()
        );
        assert_eq!(
            DcExact::new().solve(&DiGraph::empty(7)).solution,
            DdsSolution::empty()
        );
        assert_eq!(
            FlowExact.solve(&DiGraph::empty(7)).solution,
            DdsSolution::empty()
        );
    }

    #[test]
    fn single_edge_graph() {
        let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
        let r = DcExact::new().solve(&g);
        assert_eq!(r.solution.density, Density::new(1, 1, 1));
        assert_eq!(r.solution.pair.s(), &[0]);
        assert_eq!(r.solution.pair.t(), &[1]);
    }

    use dds_graph::DiGraph;
}
