//! The exact-search driver: ratio-space traversal with pruning.
//!
//! Both exact solvers share one engine differing only in options:
//!
//! * [`FlowExact`] — the Khuller–Saha/Charikar-style baseline: solve
//!   **every** reduced ratio `a/b` (`a, b ≤ n`, `Θ(n²)` of them) by
//!   flow-based binary search. Correct because any optimum has such a
//!   ratio, and the per-ratio optimum at the true ratio *is* `ρ_opt`.
//! * [`DcExact`] — the paper's contribution: walk the Stern–Brocot tree of
//!   ratios (mediant-first), and prune whole subtrees with three devices:
//!
//!   1. **structural band** — a pair with ratio `c'` has
//!      `ρ ≤ min(d⁺max·√c', d⁻max/√c')` (each side's edges are bounded by
//!      its size times the opposite max degree), so intervals entirely
//!      outside `[ρ̃²/d⁺max², d⁻max²/ρ̃²]` are discarded with an exact
//!      rational comparison, and test ratios are jumped into the band;
//!   2. **γ transfer certificates** — a per-ratio certificate
//!      "`β*(c₀) ≤ u`" implies, for every pair of ratio `c'`,
//!      `ρ ≤ (u/√(a₀b₀))·γ(c₀, c')` with
//!      `γ(c, c') = (√(c'/c) + √(c/c'))/2`; an interval whose endpoints
//!      stay below the best density is pruned. The comparison runs in `f64`
//!      with a relative safety margin; when it lands inside the margin —
//!      the regime where a bound *ties* the incumbent — an **exact integer
//!      comparison** decides it, so intervals that cannot *strictly* beat
//!      the incumbent are discarded too (see [`ExactOptions::tie_pruning`];
//!      without it, the tree spine adjacent to the optimum's own ratio ties
//!      forever and `Θ(n)` hopeless ratios get solved);
//!   3. **floors and cores** — each per-ratio search starts at the β-image
//!      of the best density so far and runs its flows on
//!      `[⌈β/2a⌉, ⌈β/2b⌉]`-cores (see `per_ratio`), so late ratios cost
//!      little even when not pruned outright.
//!
//!   A warm start from [`core_approx`] seeds the best density at
//!   `≥ ρ_opt/2` before any flow runs; a reused [`SolveContext`] seeds it
//!   at the previous solve's witness, which on a lightly mutated graph is
//!   usually the optimum itself.
//!
//! # The work queue and the incumbent
//!
//! The traversal is organised as a queue of ratio intervals consumed by
//! `threads` workers (one worker = the serial engine; the queue order then
//! matches the classic breadth-first walk). All workers share:
//!
//! * the **incumbent** — best pair + exact density, under a mutex, with its
//!   `f64` image additionally published through an atomic so the γ fast
//!   path never locks;
//! * the **certificate list** — one entry per solved ratio (RwLock);
//! * per-worker [`FlowArena`]s and the context's memoised core table, so
//!   flow networks and `[x, y]`-core peels are recycled rather than
//!   rebuilt.
//!
//! Subtree pruning is lossless for enumeration: every reduced ratio
//! strictly inside an interval is a Stern–Brocot descendant of the
//! *simplest* ratio inside it, and descent only grows both components, so
//! "simplest exceeds `n`" certifies the interval holds no candidate. The
//! solved ratio itself may be chosen anywhere inside the interval — by
//! default the simplest, but jumped into the structural density band when
//! that clips the interval (see [`choose_test_ratio`]) — because the two
//! child intervals still cover everything else.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Condvar, Mutex, RwLock};
use std::time::Duration;

use dds_flow::{FlowArena, FlowExecutor, SerialExecutor};
use dds_graph::DiGraph;
use dds_num::{candidate_ratios, cmp_prod3, simplest_between, Density, Frac, Ratio};
use dds_xycore::CoreCache;

use crate::approx::core_approx;
use crate::exact::context::SolveContext;
use crate::exact::per_ratio::{solve_ratio, RatioResources};
use crate::pool::WorkerPool;
use crate::result::SolveStats;
use crate::DdsSolution;

/// Toggles for the exact engine (the ablation axes of experiment E4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExactOptions {
    /// Stern–Brocot divide-and-conquer instead of scanning all `Θ(n²)`
    /// ratios.
    pub divide_and_conquer: bool,
    /// Run each flow decision on the guess-derived `[x, y]`-core.
    pub core_pruning: bool,
    /// Prune ratio intervals with γ transfer certificates.
    pub gamma_pruning: bool,
    /// Seed the best density with `core_approx` before any flow.
    pub warm_start: bool,
    /// Resolve γ comparisons that land inside the float safety margin with
    /// an exact integer test, discarding intervals whose certified bound
    /// merely *ties* the incumbent (a tie cannot strictly improve the
    /// answer). Fixes the `Θ(n)` tie-spine around the optimum's own ratio
    /// on planted-block-style graphs.
    pub tie_pruning: bool,
    /// Run the Dinic inner loop of each flow decision on the shared
    /// [`WorkerPool`] (parallel BFS level builds plus a concurrent
    /// blocking flow) once the network crosses
    /// [`dds_flow::PARALLEL_EDGE_THRESHOLD`]. Takes effect only with
    /// `threads > 1`; cut verdicts — and therefore the whole search — are
    /// bit-identical to the serial flow (min-cut sides are invariant
    /// across maximum flows).
    pub per_ratio_parallel: bool,
    /// Let idle interval workers race speculative Stern–Brocot
    /// neighbours of the incumbent's own ratio against the in-flight
    /// solves (losers are discarded by the exact density comparison, so
    /// this only ever adds certificates and incumbent improvements).
    /// Takes effect only with `threads > 1`.
    pub speculation: bool,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            divide_and_conquer: true,
            core_pruning: true,
            gamma_pruning: true,
            warm_start: true,
            tie_pruning: true,
            per_ratio_parallel: true,
            speculation: true,
        }
    }
}

/// Full outcome of an exact run: the optimum plus instrumentation for the
/// efficiency experiments (E2–E4, E13).
#[derive(Clone, Debug)]
pub struct ExactReport {
    /// The optimal pair and its exact density.
    pub solution: DdsSolution,
    /// Ratio intervals examined (divide-and-conquer) or ratios listed
    /// (baseline).
    pub ratios_considered: usize,
    /// Ratios for which a per-ratio search actually ran.
    pub ratios_solved: usize,
    /// Intervals discarded by the structural density band.
    pub ratios_pruned_structural: usize,
    /// Intervals discarded by γ transfer certificates (includes the exact
    /// tie prunes counted separately in `ratios_pruned_tie`).
    pub ratios_pruned_gamma: usize,
    /// Subset of the γ prunes that only the exact tie comparison could
    /// discard (the `f64` fast path was inconclusive).
    pub ratios_pruned_tie: usize,
    /// Total flow decisions executed.
    pub flow_decisions: usize,
    /// Flow decisions that recycled arena buffers instead of allocating.
    pub arena_reuse_hits: usize,
    /// `[x, y]`-core lookups served from the context memo table.
    pub core_cache_hits: usize,
    /// Flow-network node counts, one per decision (execution order is
    /// deterministic for the serial engine, arbitrary across workers;
    /// experiment E3 plots the shrinkage).
    pub network_nodes: Vec<usize>,
    /// Flow-network edge counts, aligned with `network_nodes`.
    pub network_edges: Vec<usize>,
    /// Density of the warm-start solution, when one was used.
    pub warm_start_density: Option<f64>,
    /// Density of the context's revalidated previous witness, when the
    /// solve ran on a warm [`SolveContext`].
    pub context_seed_density: Option<f64>,
    /// Ratio solves launched speculatively by idle workers (disjoint from
    /// `ratios_solved`, which counts queue-driven solves; speculative flow
    /// decisions *are* included in `flow_decisions`).
    pub speculative_solves: usize,
    /// Speculative solves whose pair improved the incumbent.
    pub speculative_wins: usize,
}

impl ExactReport {
    fn new() -> Self {
        ExactReport {
            solution: DdsSolution::empty(),
            ratios_considered: 0,
            ratios_solved: 0,
            ratios_pruned_structural: 0,
            ratios_pruned_gamma: 0,
            ratios_pruned_tie: 0,
            flow_decisions: 0,
            arena_reuse_hits: 0,
            core_cache_hits: 0,
            network_nodes: Vec::new(),
            network_edges: Vec::new(),
            warm_start_density: None,
            context_seed_density: None,
            speculative_solves: 0,
            speculative_wins: 0,
        }
    }

    /// The per-solve instrumentation summary (what `dds-stream` forwards
    /// into its epoch reports).
    #[must_use]
    pub fn stats(&self) -> SolveStats {
        SolveStats {
            ratios_solved: self.ratios_solved,
            flow_decisions: self.flow_decisions,
            arena_reuse_hits: self.arena_reuse_hits,
            core_cache_hits: self.core_cache_hits,
        }
    }
}

/// A certificate `β*(c₀) ≤ bound` for ratio `c₀ = a₀/b₀`: the exact
/// rational bound for the tie test, plus pre-divided `f64` images for the
/// lock-free fast path.
#[derive(Clone, Copy, Debug)]
struct Certificate {
    a0: u64,
    b0: u64,
    /// Exact inclusive bound on `β*(c₀)` — equal to `β*(c₀)` itself when
    /// the per-ratio search could pin it (`beta_star_exact`), which is what
    /// makes exact ties detectable.
    bound: Frac,
    /// `c₀` as `f64`.
    c0: f64,
    /// `bound/√(a₀b₀)`, inflated by the safety margin.
    g0: f64,
}

/// `γ(c, c') = (√(c'/c) + √(c/c'))/2`; `∞` at the virtual endpoints.
fn gamma(c0: f64, c_prime: f64) -> f64 {
    if c_prime <= 0.0 || c_prime.is_infinite() {
        return f64::INFINITY;
    }
    0.5 * ((c_prime / c0).sqrt() + (c0 / c_prime).sqrt())
}

/// Relative margin applied to every f64 pruning comparison; densities and
/// γ values carry ~1e-15 relative error, so 1e-9 is vastly conservative.
const PRUNE_MARGIN: f64 = 1e-9;

/// Width of the ambiguous band around the incumbent in which the `f64`
/// comparison abstains and the exact integer tie test decides. Only a
/// conservative trigger — the exact test alone is correctness-bearing.
const TIE_BAND: f64 = 1e-6;

/// What a γ-certificate sweep concluded about an interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PruneVerdict {
    /// No certificate rules the interval out.
    Keep,
    /// The `f64` fast path pruned it (bound strictly below the incumbent).
    Gamma,
    /// Only the exact tie comparison could prune it (bound ties the
    /// incumbent, or sits within float noise of it).
    Tie,
}

/// Exact test that `cert`'s transfer bound at ratio `c'` cannot *strictly*
/// exceed the incumbent density `B = E/√(s·t)`:
///
/// ```text
/// U(c') = (u/√(a₀b₀)) · γ(a₀/b₀, c')
///       = u·(p·b₀ + q·a₀) / (2·a₀·b₀·√(p·q))        for c' = p/q
/// U ≤ B ⟺ un²·(p·b₀ + q·a₀)²·s·t ≤ (2·E·a₀·b₀·ud)²·p·q
/// ```
///
/// with `u = un/ud`. Both sides are compared through 384-bit products
/// ([`cmp_prod3`]); any `u128` overflow on the way falls back to "cannot
/// prune", so the test is conservative.
fn transfer_cannot_beat(cert: &Certificate, c: Ratio, best: Density) -> bool {
    if c.is_zero() || c.is_infinite() || best.edges == 0 {
        return false; // γ → ∞ at virtual endpoints; no incumbent to tie
    }
    if cert.bound.is_negative() {
        return true;
    }
    let (p, q) = (u128::from(c.a()), u128::from(c.b()));
    let (a0, b0) = (u128::from(cert.a0), u128::from(cert.b0));
    let un = cert.bound.num().unsigned_abs();
    let ud = cert.bound.den().unsigned_abs();
    let Some(lhs) = p
        .checked_mul(b0)
        .and_then(|pb| q.checked_mul(a0).and_then(|qa| pb.checked_add(qa)))
        .and_then(|sum| un.checked_mul(sum))
    else {
        return false;
    };
    let Some(rhs) = 2u128
        .checked_mul(u128::from(best.edges))
        .and_then(|x| x.checked_mul(a0))
        .and_then(|x| x.checked_mul(b0))
        .and_then(|x| x.checked_mul(ud))
    else {
        return false;
    };
    let st = u128::from(best.s) * u128::from(best.t);
    let pq = p * q;
    cmp_prod3(lhs, lhs, st, rhs, rhs, pq) != std::cmp::Ordering::Greater
}

/// Sweeps the certificate list over interval `(cl, cr)`.
///
/// `best` is the worker's exact incumbent snapshot; `best_floor` is the
/// freshest published `f64` lower bound (the atomic incumbent floor — in
/// the parallel engine it may already exceed the snapshot).
fn gamma_prunes(
    certs: &[Certificate],
    cl: Ratio,
    cr: Ratio,
    best: Density,
    best_floor: f64,
    tie_pruning: bool,
) -> PruneVerdict {
    let best_f = best_floor.max(best.to_f64());
    if best_f <= 0.0 {
        return PruneVerdict::Keep;
    }
    let (cl_f, cr_f) = (cl.to_f64(), cr.to_f64());
    for cert in certs {
        let ub = cert.g0 * gamma(cert.c0, cl_f).max(gamma(cert.c0, cr_f));
        if ub * (1.0 + PRUNE_MARGIN) <= best_f * (1.0 - PRUNE_MARGIN) {
            return PruneVerdict::Gamma;
        }
        // Inside the float-noise band around the incumbent the fast path
        // cannot distinguish "ties" (prunable — a tie can never *strictly*
        // improve the answer) from "a hair above" (must solve). The exact
        // integer comparison against the snapshot density decides; γ is
        // quasi-convex in c', so checking both endpoints covers the whole
        // interval.
        if tie_pruning
            && ub <= best_f * (1.0 + TIE_BAND)
            && transfer_cannot_beat(cert, cl, best)
            && transfer_cannot_beat(cert, cr, best)
        {
            return PruneVerdict::Tie;
        }
    }
    PruneVerdict::Keep
}

/// The simplest ratio (componentwise-minimal) strictly inside `(cl, cr)`;
/// endpoints may be the virtual `0` / `∞`. Every rational strictly inside
/// the interval is a Stern–Brocot descendant of this one, so its components
/// lower-bound all candidates inside — which makes "simplest exceeds `n`"
/// a sound emptiness certificate for the whole interval.
fn simplest_ratio_between(cl: Ratio, cr: Ratio) -> Ratio {
    if cr.is_infinite() {
        // Smallest integer strictly above cl.
        let next = if cl.is_zero() {
            1
        } else {
            u64::try_from(cl.as_frac().floor()).expect("ratio fits u64") + 1
        };
        return Ratio::new(next, 1);
    }
    let lo = if cl.is_zero() {
        Frac::ZERO
    } else {
        cl.as_frac()
    };
    let f = simplest_between(lo, cr.as_frac());
    Ratio::new(
        u64::try_from(f.num()).expect("positive numerator"),
        u64::try_from(f.den()).expect("positive denominator"),
    )
}

/// Picks the ratio to solve inside the open interval `(cl, cr)`, or `None`
/// when the interval provably holds no viable candidate ratio.
///
/// Default choice: the simplest ratio inside (for Stern–Brocot-neighbour
/// intervals this is the mediant). When the structural density band
/// `[ρ̃²/d⁺max², d⁻max²/ρ̃²]` clips the interval, the choice jumps straight
/// into the band — without this, a graph whose optimum sits at an extreme
/// ratio (e.g. a star, c* = 1/k) forces a linear walk down the tree spine
/// with one full ratio-solve per rung.
fn choose_test_ratio(
    cl: Ratio,
    cr: Ratio,
    best: &DdsSolution,
    d_out_max: u64,
    d_in_max: u64,
    n: u64,
) -> Option<Ratio> {
    let simplest = simplest_ratio_between(cl, cr);
    if simplest.a() > n || simplest.b() > n {
        return None; // no achievable ratio inside
    }
    if best.density.is_zero() {
        return Some(simplest);
    }
    // Clamp to the band (exact rationals; band endpoints are closed).
    let rho2 = best.density.squared();
    let band_lo = rho2 / Frac::new(i128::from(d_out_max) * i128::from(d_out_max), 1);
    let band_hi = Frac::new(i128::from(d_in_max) * i128::from(d_in_max), 1) / rho2;
    let lo = if cl.is_zero() {
        band_lo
    } else {
        band_lo.max(cl.as_frac())
    };
    let hi = if cr.is_infinite() {
        band_hi
    } else {
        band_hi.min(cr.as_frac())
    };
    let jump = if lo < hi {
        simplest_between(lo, hi)
    } else if lo == hi {
        lo // the band ∩ interval is a single (rational) point
    } else {
        return Some(simplest); // structurally dead; the caller's band check decides
    };
    let (num, den) = match (u64::try_from(jump.num()), u64::try_from(jump.den())) {
        (Ok(a), Ok(b)) => (a, b),
        _ => return Some(simplest),
    };
    if num == 0 || num > n || den > n {
        return Some(simplest);
    }
    let c = Ratio::new(num, den);
    if cl < c && c < cr {
        Some(c)
    } else {
        Some(simplest)
    }
}

/// Exact structural band check: no ratio strictly inside `(cl, cr)` can
/// reach the best density ρ̃.
///
/// A pair with ratio `c' = |S|/|T|` has `|E| ≤ |S|·d⁺max`, so
/// `ρ ≤ d⁺max·√c'` — prune when `(d⁺max)²·cr ≤ ρ̃²`. Symmetrically
/// `|E| ≤ |T|·d⁻max` gives `ρ ≤ d⁻max/√c'` — prune when
/// `(d⁻max)² ≤ ρ̃²·cl`. Both comparisons are exact rationals.
fn structurally_pruned(
    cl: Ratio,
    cr: Ratio,
    best: &DdsSolution,
    d_out_max: u64,
    d_in_max: u64,
) -> bool {
    if best.density.is_zero() {
        return false;
    }
    let rho2 = best.density.squared();
    let sq = |d: u64| Frac::new(i128::from(d) * i128::from(d), 1);
    if !cl.is_zero() && !cl.is_infinite() && sq(d_in_max) <= rho2 * cl.as_frac() {
        return true;
    }
    if !cr.is_infinite() && !cr.is_zero() && sq(d_out_max) * cr.as_frac() <= rho2 {
        return true;
    }
    false
}

/// Queue of pending ratio intervals plus the in-flight count that decides
/// termination (empty queue alone is not enough — a busy worker may still
/// push children).
struct QueueState {
    deque: VecDeque<(Ratio, Ratio)>,
    in_flight: usize,
}

/// Counters and per-decision traces accumulated across workers.
#[derive(Default)]
struct Metrics {
    ratios_considered: usize,
    ratios_solved: usize,
    pruned_structural: usize,
    pruned_gamma: usize,
    pruned_tie: usize,
    flow_decisions: usize,
    network_nodes: Vec<usize>,
    network_edges: Vec<usize>,
    speculative_solves: usize,
    speculative_wins: usize,
}

/// Dedup set and concurrency budget for speculative ratio solves.
#[derive(Default)]
struct SpecState {
    /// Reduced ratios already solved, claimed, or queued as test ratios —
    /// a speculation never duplicates queue-driven work.
    tried: HashSet<(u64, u64)>,
    /// Speculations currently in flight (capped so speculators can never
    /// starve the flow phases of the incumbent-path solves).
    active: usize,
}

/// What an interval worker does next.
enum Work {
    /// A ratio interval popped from the shared queue.
    Interval(Ratio, Ratio),
    /// A speculative solve of one concrete ratio near the incumbent's.
    Speculate(Ratio),
}

/// Everything the interval workers share; see the module docs.
struct Search<'g> {
    g: &'g DiGraph,
    opts: ExactOptions,
    n: u64,
    d_out_max: u64,
    d_in_max: u64,
    queue: Mutex<QueueState>,
    ready: Condvar,
    /// Exact incumbent: best pair + density (achieved, hence a sound prune
    /// reference at all times).
    incumbent: Mutex<DdsSolution>,
    /// `f64` image of the incumbent density, published lock-free so the γ
    /// fast path and sibling workers see improvements immediately.
    floor_bits: AtomicU64,
    certs: RwLock<Vec<Certificate>>,
    metrics: Mutex<Metrics>,
    /// Executor for the Dinic inner loop of every flow decision.
    exec: &'g dyn FlowExecutor,
    /// Worker count the search was launched with (sizes the speculation
    /// budget).
    workers: usize,
    /// The pool to donate idle cycles to ([`WorkerPool::help_compute`]);
    /// `None` in the serial engine.
    pool: Option<&'static WorkerPool>,
    spec: Mutex<SpecState>,
}

impl<'g> Search<'g> {
    fn new(
        g: &'g DiGraph,
        opts: ExactOptions,
        seed: DdsSolution,
        exec: &'g dyn FlowExecutor,
        workers: usize,
        pool: Option<&'static WorkerPool>,
    ) -> Self {
        let mut deque = VecDeque::new();
        deque.push_back((Ratio::ZERO, Ratio::INFINITY));
        let floor = seed.density.to_f64();
        Search {
            g,
            opts,
            n: g.n() as u64,
            d_out_max: g.max_out_degree() as u64,
            d_in_max: g.max_in_degree() as u64,
            queue: Mutex::new(QueueState {
                deque,
                in_flight: 0,
            }),
            ready: Condvar::new(),
            incumbent: Mutex::new(seed),
            floor_bits: AtomicU64::new(floor.to_bits()),
            certs: RwLock::new(Vec::new()),
            metrics: Mutex::new(Metrics::default()),
            exec,
            workers,
            pool,
            spec: Mutex::new(SpecState::default()),
        }
    }

    /// Next thing for a worker to do: an interval when the queue has one;
    /// `None` once the queue is drained and no worker is busy. In between
    /// — queue empty but siblings still producing children — an idle
    /// worker claims a speculative ratio near the incumbent's, or donates
    /// its cycles to queued pool compute tasks (a sibling's flow phases),
    /// instead of sleeping.
    ///
    /// With one worker the in-between state is unreachable (the only
    /// worker is never idle while `in_flight > 0`), which is what keeps
    /// the serial engine's behaviour bit-identical to the pre-pool one.
    fn next_work(&self) -> Option<Work> {
        loop {
            {
                let mut q = self.queue.lock().expect("queue poisoned");
                loop {
                    if let Some((cl, cr)) = q.deque.pop_front() {
                        q.in_flight += 1;
                        return Some(Work::Interval(cl, cr));
                    }
                    if q.in_flight == 0 {
                        return None;
                    }
                    if self.opts.speculation || self.pool.is_some() {
                        break; // leave the lock and find side work
                    }
                    q = self.ready.wait(q).expect("queue poisoned");
                }
            }
            if let Some(c) = self.claim_speculation() {
                return Some(Work::Speculate(c));
            }
            if let Some(pool) = self.pool {
                if pool.help_compute() {
                    continue; // ran someone's flow task; re-check the queue
                }
            }
            // Nothing to steal right now: nap briefly (pool compute tasks
            // arriving does not signal `ready`, hence the timeout), then
            // re-check everything.
            let q = self.queue.lock().expect("queue poisoned");
            if q.deque.is_empty() && q.in_flight > 0 {
                drop(
                    self.ready
                        .wait_timeout(q, Duration::from_micros(500))
                        .expect("queue poisoned"),
                );
            }
        }
    }

    /// Picks an unsolved reduced ratio adjacent to the incumbent's own
    /// (`(k·a + 1)/k·b` and `k·a/(k·b + 1)` for growing `k` — the
    /// Stern–Brocot neighbours where a near-optimal pair would live) and
    /// claims it, respecting the in-flight speculation cap.
    fn claim_speculation(&self) -> Option<Ratio> {
        if !self.opts.speculation {
            return None;
        }
        let (s_len, t_len) = {
            let inc = self.incumbent.lock().expect("incumbent poisoned");
            if inc.pair.is_empty() {
                return None;
            }
            (inc.pair.s().len() as u64, inc.pair.t().len() as u64)
        };
        let base = Ratio::new(s_len, t_len);
        let cap = (self.workers / 2).max(1);
        let mut spec = self.spec.lock().expect("spec poisoned");
        if spec.active >= cap {
            return None;
        }
        for k in 1..=32u64 {
            let (ka, kb) = (k * base.a(), k * base.b());
            for (da, db) in [(1, 0), (0, 1)] {
                let (ca, cb) = (ka + da, kb + db);
                if ca == 0 || cb == 0 || ca > self.n || cb > self.n {
                    continue;
                }
                let c = Ratio::new(ca, cb);
                if spec.tried.insert((c.a(), c.b())) {
                    spec.active += 1;
                    return Some(c);
                }
            }
        }
        None
    }

    /// Runs one speculative ratio solve: prune checks first (a point
    /// interval reuses the exact interval machinery), then the same
    /// certify-mode search as a queue-driven solve — its certificate and
    /// any improving pair are merged exactly like queue results, so a
    /// losing speculation costs only the cycles an idle worker had to
    /// spare anyway.
    fn speculate(&self, c: Ratio, arena: &mut FlowArena, cores: &Mutex<&mut CoreCache>) {
        struct SpecGuard<'a, 'g>(&'a Search<'g>);
        impl Drop for SpecGuard<'_, '_> {
            fn drop(&mut self) {
                let mut spec = self
                    .0
                    .spec
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                spec.active -= 1;
            }
        }
        let _retire = SpecGuard(self);

        let best = self.incumbent.lock().expect("incumbent poisoned").clone();
        if structurally_pruned(c, c, &best, self.d_out_max, self.d_in_max) {
            return;
        }
        if self.opts.gamma_pruning {
            let certs = self.certs.read().expect("certs poisoned");
            let verdict = gamma_prunes(
                &certs,
                c,
                c,
                best.density,
                self.floor(),
                self.opts.tie_pruning,
            );
            if verdict != PruneVerdict::Keep {
                return;
            }
        }
        let outcome = self.solve_at(c, &best, arena, cores);
        let improved = outcome
            .as_ref()
            .map(|sol| self.improve(sol.clone()))
            .unwrap_or(false);
        let mut m = self.metrics.lock().expect("metrics poisoned");
        m.speculative_solves += 1;
        if improved {
            m.speculative_wins += 1;
        }
    }

    /// The shared tail of queue-driven and speculative ratio solves: run
    /// the certify-mode per-ratio search at `c`, record its flow
    /// decisions, publish its certificate, and return the improving
    /// solution (if any) for the caller to merge.
    fn solve_at(
        &self,
        c: Ratio,
        best: &DdsSolution,
        arena: &mut FlowArena,
        cores: &Mutex<&mut CoreCache>,
    ) -> Option<DdsSolution> {
        let tighten = self.opts.gamma_pruning;
        let floor_beta = if best.density.is_zero() {
            Frac::ZERO
        } else {
            best.density.beta_lower_bound(c.a(), c.b())
        };
        let seed_pair = (!best.pair.is_empty()).then(|| best.pair.clone());
        let outcome = {
            let mut core_of =
                |x: u64, y: u64| cores.lock().expect("cores poisoned").core(self.g, x, y);
            let mut res = RatioResources {
                arena,
                core_of: &mut core_of,
                exec: self.exec,
            };
            solve_ratio(
                self.g,
                c.a(),
                c.b(),
                floor_beta,
                self.opts.core_pruning,
                tighten,
                seed_pair.as_ref(),
                &mut res,
            )
        };
        {
            let mut m = self.metrics.lock().expect("metrics poisoned");
            m.flow_decisions += outcome.decisions.len();
            for d in &outcome.decisions {
                m.network_nodes.push(d.nodes);
                m.network_edges.push(d.edges);
            }
        }
        if tighten {
            // Prefer the pinned β*(c) when the search proved it — that is
            // what makes exact ties against the incumbent detectable.
            let bound = outcome.beta_star_exact.unwrap_or(outcome.certified_upper);
            let ab = (c.a() as f64) * (c.b() as f64);
            self.certs
                .write()
                .expect("certs poisoned")
                .push(Certificate {
                    a0: c.a(),
                    b0: c.b(),
                    bound,
                    c0: c.to_f64(),
                    g0: (bound.to_f64() / ab.sqrt()) * (1.0 + PRUNE_MARGIN),
                });
        }
        outcome
            .best
            .map(|(pair, _)| DdsSolution::from_pair(self.g, pair))
    }

    /// Lock-free read of the freshest published incumbent density.
    fn floor(&self) -> f64 {
        f64::from_bits(self.floor_bits.load(AtomicOrdering::Relaxed))
    }

    /// Merges a candidate into the incumbent and raises the atomic floor;
    /// `true` when the incumbent strictly improved.
    fn improve(&self, candidate: DdsSolution) -> bool {
        let mut inc = self.incumbent.lock().expect("incumbent poisoned");
        let improved = inc.improve_to(candidate);
        if improved {
            let bits = inc.density.to_f64().to_bits();
            // Monotone max: competing stores are all achieved densities, so
            // keep the largest (non-negative f64 order == bit order).
            self.floor_bits.fetch_max(bits, AtomicOrdering::Relaxed);
        }
        improved
    }

    /// Processes one interval: prune or solve, then return the children to
    /// publish (`None` when the subtree is discarded).
    fn process(
        &self,
        cl: Ratio,
        cr: Ratio,
        arena: &mut FlowArena,
        cores: &Mutex<&mut CoreCache>,
    ) -> Option<[(Ratio, Ratio); 2]> {
        let best = self.incumbent.lock().expect("incumbent poisoned").clone();
        let c = choose_test_ratio(cl, cr, &best, self.d_out_max, self.d_in_max, self.n)?;
        {
            self.metrics
                .lock()
                .expect("metrics poisoned")
                .ratios_considered += 1;
        }
        if structurally_pruned(cl, cr, &best, self.d_out_max, self.d_in_max) {
            self.metrics
                .lock()
                .expect("metrics poisoned")
                .pruned_structural += 1;
            return None;
        }
        if self.opts.gamma_pruning {
            let verdict = {
                let certs = self.certs.read().expect("certs poisoned");
                gamma_prunes(
                    &certs,
                    cl,
                    cr,
                    best.density,
                    self.floor(),
                    self.opts.tie_pruning,
                )
            };
            if verdict != PruneVerdict::Keep {
                let mut m = self.metrics.lock().expect("metrics poisoned");
                m.pruned_gamma += 1;
                if verdict == PruneVerdict::Tie {
                    m.pruned_tie += 1;
                }
                return None;
            }
        }

        // Solve the test ratio (claiming it against speculators first).
        // Tight certificates are only worth their extra flows when
        // γ-pruning consumes them.
        if self.opts.speculation {
            self.spec
                .lock()
                .expect("spec poisoned")
                .tried
                .insert((c.a(), c.b()));
        }
        self.metrics.lock().expect("metrics poisoned").ratios_solved += 1;
        if let Some(sol) = self.solve_at(c, &best, arena, cores) {
            self.improve(sol);
        }
        Some([(cl, c), (c, cr)])
    }

    /// A worker's whole life: drain the queue (speculating or helping the
    /// pool when idle) until global quiescence.
    fn worker(&self, arena: &mut FlowArena, cores: &Mutex<&mut CoreCache>) {
        while let Some(work) = self.next_work() {
            match work {
                Work::Interval(cl, cr) => {
                    let mut guard = IntervalGuard {
                        search: self,
                        children: None,
                    };
                    guard.children = self.process(cl, cr, arena, cores);
                    // `guard` drops here: children published, in_flight
                    // retired.
                }
                Work::Speculate(c) => self.speculate(c, arena, cores),
            }
        }
    }
}

/// Retires one popped interval on drop — *including during a panic
/// unwind*, so a crashing worker decrements `in_flight` and wakes its
/// siblings instead of stranding them in the condvar wait forever. The
/// siblings then drain and exit, `thread::scope` joins, and the original
/// panic propagates normally.
struct IntervalGuard<'a, 'g> {
    search: &'a Search<'g>,
    children: Option<[(Ratio, Ratio); 2]>,
}

impl Drop for IntervalGuard<'_, '_> {
    fn drop(&mut self) {
        // Take the queue even if poisoned: its state is plain data that the
        // updates below keep consistent, and panicking inside a drop during
        // an unwind would abort the whole process.
        let mut q = self
            .search
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(pair) = self.children.take() {
            q.deque.extend(pair);
        }
        q.in_flight -= 1;
        drop(q);
        // Wake both idle workers (new children) and would-be terminators
        // (in_flight may have hit zero).
        self.search.ready.notify_all();
    }
}

pub(crate) fn run_with_context(
    g: &DiGraph,
    opts: ExactOptions,
    ctx: &mut SolveContext,
    threads: usize,
) -> ExactReport {
    let workers = threads.max(1);
    let mut report = ExactReport::new();
    if g.m() == 0 {
        return report;
    }
    ctx.prepare(g, workers);
    let arena_hits_before = ctx.arena_reuse_hits();
    let core_hits_before = ctx.core_cache_hits();

    // Seed the incumbent: previous witness (warm context), then the
    // core_approx 2-approximation. Both are real pairs of `g`.
    let mut seed = DdsSolution::empty();
    if let Some(prev) = ctx.seed_solution(g) {
        report.context_seed_density = Some(prev.density.to_f64());
        seed.improve_to(prev);
    }
    if opts.warm_start {
        let warm = core_approx(g);
        report.warm_start_density = Some(warm.solution.density.to_f64());
        seed.improve_to(warm.solution);
    }

    if opts.divide_and_conquer {
        // Executor policy: the serial engine (`threads == 1`) always runs
        // the flow on `SerialExecutor` — that keeps `DcExact::solve`
        // bit-identical to the historical serial engine and preserves the
        // meaning of every serial-vs-parallel pinning test. With more
        // threads, the Dinic inner loop borrows the shared pool when the
        // per-ratio lever is on.
        static SERIAL: SerialExecutor = SerialExecutor;
        let pool = (workers > 1).then(WorkerPool::global);
        let exec: &dyn FlowExecutor = match pool {
            Some(p) if opts.per_ratio_parallel => p,
            _ => &SERIAL,
        };
        let search = Search::new(g, opts, seed, exec, workers, pool);
        let SolveContext { arenas, cores, .. } = ctx;
        let cores_mx = Mutex::new(cores);
        match pool {
            None => search.worker(&mut arenas[0], &cores_mx),
            Some(pool) => {
                let search_ref = &search;
                let cores_ref = &cores_mx;
                pool.scope(|s| {
                    let mut lanes = arenas.iter_mut().take(workers);
                    let own = lanes.next().expect("at least one arena");
                    for arena in lanes {
                        // Worker-kind tasks: interval workers may park in
                        // `next_work`, so idle threads must never "help"
                        // with them (see `pool::TaskKind`).
                        s.spawn_worker(move || search_ref.worker(arena, cores_ref));
                    }
                    // The calling thread is always one of the lanes, so
                    // the search progresses even on a saturated (or
                    // zero-background) pool.
                    search_ref.worker(own, cores_ref);
                });
            }
        }
        let metrics = search.metrics.into_inner().expect("metrics poisoned");
        report.solution = search.incumbent.into_inner().expect("incumbent poisoned");
        report.ratios_considered = metrics.ratios_considered;
        report.ratios_solved = metrics.ratios_solved;
        report.ratios_pruned_structural = metrics.pruned_structural;
        report.ratios_pruned_gamma = metrics.pruned_gamma;
        report.ratios_pruned_tie = metrics.pruned_tie;
        report.flow_decisions = metrics.flow_decisions;
        report.network_nodes = metrics.network_nodes;
        report.network_edges = metrics.network_edges;
        report.speculative_solves = metrics.speculative_solves;
        report.speculative_wins = metrics.speculative_wins;
    } else {
        assert!(
            g.n() <= 4096,
            "the all-ratios baseline enumerates Θ(n²) ratios; n = {} is too large — enable divide_and_conquer",
            g.n()
        );
        report.solution = seed;
        let n = g.n() as u64;
        let SolveContext { arenas, cores, .. } = ctx;
        let arena = &mut arenas[0];
        for r in candidate_ratios(n) {
            report.ratios_considered += 1;
            let (a, b) = (r.a(), r.b());
            let floor = if report.solution.density.is_zero() {
                Frac::ZERO
            } else {
                report.solution.density.beta_lower_bound(a, b)
            };
            let seed_pair =
                (!report.solution.pair.is_empty()).then(|| report.solution.pair.clone());
            let outcome = {
                let mut core_of = |x: u64, y: u64| cores.core(g, x, y);
                let mut res = RatioResources {
                    arena,
                    core_of: &mut core_of,
                    exec: &SerialExecutor,
                };
                solve_ratio(
                    g,
                    a,
                    b,
                    floor,
                    opts.core_pruning,
                    false,
                    seed_pair.as_ref(),
                    &mut res,
                )
            };
            report.ratios_solved += 1;
            report.flow_decisions += outcome.decisions.len();
            for d in &outcome.decisions {
                report.network_nodes.push(d.nodes);
                report.network_edges.push(d.edges);
            }
            if let Some((pair, _)) = outcome.best {
                report.solution.improve_to(DdsSolution::from_pair(g, pair));
            }
        }
    }

    report.arena_reuse_hits = ctx.arena_reuse_hits() - arena_hits_before;
    report.core_cache_hits = ctx.core_cache_hits() - core_hits_before;
    ctx.metrics.record(&report);
    ctx.store_incumbent(&report.solution);
    report
}

/// The `Θ(n²)`-ratio exact baseline (flow binary search at every candidate
/// ratio, no pruning devices). This is the algorithm the paper's exact
/// solver is benchmarked against; expect it to be orders of magnitude
/// slower than [`DcExact`] beyond toy sizes.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowExact;

impl FlowExact {
    /// Solves exactly. See [`ExactReport`].
    #[must_use]
    pub fn solve(&self, g: &DiGraph) -> ExactReport {
        run_with_context(
            g,
            ExactOptions {
                divide_and_conquer: false,
                core_pruning: false,
                gamma_pruning: false,
                warm_start: false,
                tie_pruning: false,
                per_ratio_parallel: false,
                speculation: false,
            },
            &mut SolveContext::new(),
            1,
        )
    }
}

/// The paper's exact solver: divide-and-conquer over the ratio space with
/// core-shrunk flow networks, γ certificates (with exact tie pruning), and
/// a `core_approx` warm start. All devices can be toggled via
/// [`ExactOptions`] for ablation.
#[derive(Clone, Copy, Debug, Default)]
pub struct DcExact {
    /// Engine toggles (all enabled by [`Default`]).
    pub options: ExactOptions,
}

impl DcExact {
    /// Solver with all optimisations enabled.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Solver with explicit toggles (ablation studies).
    #[must_use]
    pub fn with_options(options: ExactOptions) -> Self {
        DcExact { options }
    }

    /// Solves exactly with throwaway state. See [`ExactReport`].
    #[must_use]
    pub fn solve(&self, g: &DiGraph) -> ExactReport {
        self.solve_with(&mut SolveContext::new(), g)
    }

    /// Solves exactly on a reusable [`SolveContext`]: flow arenas and
    /// memoised cores are recycled, and the previous solve's witness seeds
    /// the incumbent (after revalidation on `g`). Results are identical to
    /// [`solve`](DcExact::solve) — only the work profile changes.
    #[must_use]
    pub fn solve_with(&self, ctx: &mut SolveContext, g: &DiGraph) -> ExactReport {
        run_with_context(g, self.options, ctx, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::brute_force_dds;
    use dds_graph::gen;
    use dds_num::Density;

    fn all_option_combos() -> Vec<ExactOptions> {
        let mut out = Vec::new();
        for dc in [false, true] {
            for core in [false, true] {
                for gamma in [false, true] {
                    for warm in [false, true] {
                        for tie in [false, true] {
                            out.push(ExactOptions {
                                divide_and_conquer: dc,
                                core_pruning: core,
                                gamma_pruning: gamma,
                                warm_start: warm,
                                tie_pruning: tie,
                                ..ExactOptions::default()
                            });
                        }
                    }
                }
            }
        }
        out
    }

    #[test]
    fn fixtures_have_known_optima() {
        let cases: Vec<(DiGraph, Density)> = vec![
            (gen::complete_bipartite(2, 3), Density::new(6, 2, 3)),
            (gen::out_star(4), Density::new(4, 1, 4)),
            (gen::cycle(5), Density::new(1, 1, 1)),
            (gen::path(4), Density::new(1, 1, 1)),
            (gen::complete_bipartite(3, 3), Density::new(9, 3, 3)),
        ];
        for (g, want) in cases {
            let got = DcExact::new().solve(&g);
            assert_eq!(got.solution.density, want);
            let base = FlowExact.solve(&g);
            assert_eq!(base.solution.density, want);
        }
    }

    #[test]
    fn every_option_combo_matches_brute_force() {
        for seed in 0..6 {
            let g = gen::gnm(7, 18, seed);
            let want = brute_force_dds(&g).density;
            for opts in all_option_combos() {
                let got = DcExact::with_options(opts).solve(&g);
                assert_eq!(got.solution.density, want, "seed={seed} opts={opts:?}");
                // The reported pair really has the reported density.
                assert_eq!(got.solution.pair.density(&g), got.solution.density);
            }
        }
    }

    #[test]
    fn dc_matches_baseline_on_medium_graphs() {
        for seed in 0..3 {
            let g = gen::gnm(22, 90, seed);
            let dc = DcExact::new().solve(&g);
            let base = FlowExact.solve(&g);
            assert_eq!(dc.solution.density, base.solution.density, "seed={seed}");
        }
        let g = gen::power_law(25, 110, 2.2, 1);
        assert_eq!(
            DcExact::new().solve(&g).solution.density,
            FlowExact.solve(&g).solution.density
        );
    }

    #[test]
    fn planted_block_recovered_exactly() {
        let p = gen::planted(60, 90, 4, 6, 1.0, 11);
        let got = DcExact::new().solve(&p.graph);
        // The planted complete block has density √24 ≈ 4.9; the sparse
        // background cannot beat it, and the solver must return at least
        // the planted density.
        assert!(got.solution.density >= p.pair.density(&p.graph));
        assert!(crate::validate::is_locally_maximal(
            &p.graph,
            &got.solution.pair
        ));
    }

    #[test]
    fn tie_pruning_collapses_the_spine_on_planted_blocks() {
        // The regression named in ROADMAP.md: certificates from ratios whose
        // β* maximiser is the planted block transfer to a bound that *ties*
        // the incumbent exactly at the block's own ratio, so without the
        // exact tie test the Stern–Brocot spine next to the optimum is
        // re-solved rung by rung (~2n hopeless ratio solves).
        let p = gen::planted(60, 90, 4, 6, 1.0, 11);
        let with = DcExact::new().solve(&p.graph);
        let without = DcExact::with_options(ExactOptions {
            tie_pruning: false,
            ..ExactOptions::default()
        })
        .solve(&p.graph);
        assert_eq!(with.solution.density, without.solution.density);
        assert!(with.ratios_pruned_tie > 0, "exact tie prunes must fire");
        assert!(
            with.ratios_solved * 2 <= without.ratios_solved,
            "tie pruning should at least halve the solved ratios: {} vs {}",
            with.ratios_solved,
            without.ratios_solved
        );
        assert!(with.flow_decisions < without.flow_decisions);
    }

    #[test]
    fn dc_solves_far_fewer_ratios_than_baseline() {
        // Uniform graphs are the flat-envelope worst case for γ-pruning;
        // expect a moderate factor there and a larger one on skewed
        // graphs (matching the paper's dataset-dependent gains).
        let g = gen::gnm(30, 160, 4);
        let dc = DcExact::new().solve(&g);
        let base = FlowExact.solve(&g);
        assert_eq!(dc.solution.density, base.solution.density);
        assert!(
            dc.ratios_solved * 4 < base.ratios_solved,
            "DC solved {} ratios vs baseline {}",
            dc.ratios_solved,
            base.ratios_solved
        );
        assert!(dc.flow_decisions < base.flow_decisions);

        let g = gen::power_law(60, 400, 2.2, 4);
        let dc = DcExact::new().solve(&g);
        let base = FlowExact.solve(&g);
        assert_eq!(dc.solution.density, base.solution.density);
        assert!(
            dc.ratios_solved * 10 < base.ratios_solved,
            "power-law: DC solved {} ratios vs baseline {}",
            dc.ratios_solved,
            base.ratios_solved
        );
        assert!(dc.flow_decisions * 5 < base.flow_decisions);
    }

    #[test]
    fn core_pruning_shrinks_networks_in_the_report() {
        let p = gen::planted(50, 120, 4, 5, 1.0, 9);
        let with = DcExact::new().solve(&p.graph);
        let without = DcExact::with_options(ExactOptions {
            core_pruning: false,
            ..ExactOptions::default()
        })
        .solve(&p.graph);
        assert_eq!(with.solution.density, without.solution.density);
        let max_with = with.network_nodes.iter().max().copied().unwrap_or(0);
        let max_without = without.network_nodes.iter().max().copied().unwrap_or(0);
        assert!(
            max_with <= max_without,
            "core pruning must not grow networks ({max_with} vs {max_without})"
        );
    }

    #[test]
    fn structural_band_prunes_extreme_ratios_on_stars() {
        // out_star(64): ρ_opt = 8 with c* = 1/64; d⁻max = 1 means any ratio
        // above (d⁻max/ρ̃)² = 1/64 is structurally hopeless, so almost the
        // whole Stern–Brocot tree dies without a single flow.
        let g = gen::out_star(64);
        let r = DcExact::new().solve(&g);
        assert_eq!(r.solution.density, Density::new(64, 1, 64));
        assert!(r.ratios_pruned_structural > 0, "band should fire");
        assert!(
            r.ratios_solved <= 8,
            "star should need only a handful of ratio solves, got {}",
            r.ratios_solved
        );
    }

    #[test]
    fn gamma_pruning_fires_and_preserves_the_answer() {
        let g = gen::power_law(60, 360, 2.2, 12);
        let with = DcExact::new().solve(&g);
        assert!(
            with.ratios_pruned_gamma > 0,
            "γ certificates should prune intervals"
        );
        let without = DcExact::with_options(ExactOptions {
            gamma_pruning: false,
            ..ExactOptions::default()
        })
        .solve(&g);
        assert_eq!(with.solution.density, without.solution.density);
        assert!(with.ratios_solved < without.ratios_solved);
    }

    #[test]
    fn warm_start_density_is_recorded_and_bounded() {
        let g = gen::power_law(40, 220, 2.3, 8);
        let r = DcExact::new().solve(&g);
        let warm = r.warm_start_density.expect("warm start enabled");
        assert!(warm <= r.solution.density.to_f64() + 1e-9);
        assert!(
            2.0 * warm >= r.solution.density.to_f64() - 1e-9,
            "2-approx warm start"
        );
    }

    #[test]
    fn arena_reuse_is_counted() {
        let g = gen::power_law(40, 220, 2.3, 8);
        let r = DcExact::new().solve(&g);
        // Every decision that actually built a network recycled the single
        // arena except the very first; decisions that certified on an empty
        // alive-mask never touch it, so the bound is strict but close.
        assert!(
            r.arena_reuse_hits > 0,
            "a multi-decision solve must recycle buffers"
        );
        assert!(r.arena_reuse_hits < r.flow_decisions);
        assert_eq!(r.stats().flow_decisions, r.flow_decisions);
        assert_eq!(r.stats().arena_reuse_hits, r.arena_reuse_hits);
    }

    #[test]
    fn warm_context_reuses_state_and_matches_cold_solves() {
        let g = gen::power_law(40, 220, 2.3, 8);
        let mut ctx = SolveContext::new();
        let first = DcExact::new().solve_with(&mut ctx, &g);
        let second = DcExact::new().solve_with(&mut ctx, &g);
        let cold = DcExact::new().solve(&g);
        assert_eq!(first.solution.density, cold.solution.density);
        assert_eq!(second.solution.density, cold.solution.density);
        assert_eq!(
            second.context_seed_density,
            Some(first.solution.density.to_f64()),
            "second solve must seed from the first solve's witness"
        );
        assert!(
            second.flow_decisions <= first.flow_decisions,
            "warm start cannot cost more flows: {} vs {}",
            second.flow_decisions,
            first.flow_decisions
        );
        assert_eq!(ctx.solves(), 2);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        assert_eq!(
            DcExact::new().solve(&DiGraph::empty(0)).solution,
            DdsSolution::empty()
        );
        assert_eq!(
            DcExact::new().solve(&DiGraph::empty(7)).solution,
            DdsSolution::empty()
        );
        assert_eq!(
            FlowExact.solve(&DiGraph::empty(7)).solution,
            DdsSolution::empty()
        );
    }

    #[test]
    fn single_edge_graph() {
        let g = DiGraph::from_edges(2, &[(0, 1)]).unwrap();
        let r = DcExact::new().solve(&g);
        assert_eq!(r.solution.density, Density::new(1, 1, 1));
        assert_eq!(r.solution.pair.s(), &[0]);
        assert_eq!(r.solution.pair.t(), &[1]);
    }

    use dds_graph::DiGraph;
}
