//! The long-lived solver state behind the exact pipeline.
//!
//! # Lifecycle
//!
//! A [`SolveContext`] is created once and threaded through any number of
//! exact solves ([`DcExact::solve_with`]). Across those solves it owns:
//!
//! * **flow arenas** — one [`FlowArena`] per worker thread, so every flow
//!   decision after the first recycles its node/edge buffers instead of
//!   reallocating ([`FlowNetwork::reset_for`]);
//! * **a core memo table** — a [`CoreCache`] keyed by the `(x, y)` peel
//!   thresholds the β floor induces, so repeated thresholds cost an `O(n)`
//!   clone instead of an `O(n + m)` peel;
//! * **the incumbent** — the witness pair of the previous solve. The next
//!   solve on the *same or a mutated* graph re-validates the pair (vertex
//!   ids in range, density recomputed on the new graph) and uses it to
//!   seed the density floor, which is how the stream engine's lazy
//!   re-solves warm-start from the previous epoch's optimum.
//!
//! # Invalidation
//!
//! The context keeps a copy of the graph it last solved and compares the
//! next solve's graph against it **exactly** (CSR equality — `O(n + m)`,
//! the same order as materialising the graph in the first place; no
//! probabilistic fingerprints anywhere near a correctness-bearing cache).
//! A mismatch — e.g. a stream epoch mutated the graph — clears the
//! memoised cores automatically; the incumbent is *not* cleared, because a
//! re-validated pair is still a sound (often excellent) lower bound on the
//! new graph. Reusing one context across entirely different graphs is
//! therefore safe: results are identical to a fresh context (tested), only
//! the warm-start quality differs.
//!
//! [`DcExact::solve_with`]: crate::DcExact::solve_with
//! [`FlowNetwork::reset_for`]: dds_flow::FlowNetwork::reset_for

use dds_flow::FlowArena;
use dds_graph::{DiGraph, Pair};
use dds_obs::{Counter, Registry};
use dds_xycore::CoreCache;

use crate::exact::engine::ExactReport;
use crate::DdsSolution;

/// Obs-backed lifetime counters of a [`SolveContext`] (the `dds_exact_*`
/// series): standalone atomics by default, swapped for registered handles
/// by [`SolveContext::attach_obs`]. Every exact solve publishes its
/// report's counters here at the single fold point in `run_with_context`
/// — never inside a flow inner loop.
#[derive(Debug, Default)]
pub(crate) struct ExactMetrics {
    pub(crate) solves: Counter,
    pub(crate) ratios_solved: Counter,
    pub(crate) ratios_pruned_tie: Counter,
    pub(crate) flow_decisions: Counter,
    pub(crate) arena_reuse_hits: Counter,
    pub(crate) core_cache_hits: Counter,
}

impl Clone for ExactMetrics {
    /// Snapshots values into fresh standalone cells: a cloned context
    /// counts independently instead of double-writing shared handles.
    fn clone(&self) -> Self {
        let copy = |c: &Counter| {
            let fresh = Counter::standalone();
            fresh.store(c.get());
            fresh
        };
        ExactMetrics {
            solves: copy(&self.solves),
            ratios_solved: copy(&self.ratios_solved),
            ratios_pruned_tie: copy(&self.ratios_pruned_tie),
            flow_decisions: copy(&self.flow_decisions),
            arena_reuse_hits: copy(&self.arena_reuse_hits),
            core_cache_hits: copy(&self.core_cache_hits),
        }
    }
}

impl ExactMetrics {
    fn attach(&mut self, registry: &Registry) {
        let transfer = |old: &mut Counter, name: &str| {
            let new = registry.counter(name);
            new.add(old.get());
            *old = new;
        };
        transfer(&mut self.solves, "dds_exact_solves_total");
        transfer(&mut self.ratios_solved, "dds_exact_ratios_solved_total");
        transfer(
            &mut self.ratios_pruned_tie,
            "dds_exact_ratios_pruned_tie_total",
        );
        transfer(&mut self.flow_decisions, "dds_exact_flow_decisions_total");
        transfer(
            &mut self.arena_reuse_hits,
            "dds_exact_arena_reuse_hits_total",
        );
        transfer(&mut self.core_cache_hits, "dds_exact_core_cache_hits_total");
    }

    pub(crate) fn record(&self, report: &ExactReport) {
        self.ratios_solved.add(report.ratios_solved as u64);
        self.ratios_pruned_tie.add(report.ratios_pruned_tie as u64);
        self.flow_decisions.add(report.flow_decisions as u64);
        self.arena_reuse_hits.add(report.arena_reuse_hits as u64);
        self.core_cache_hits.add(report.core_cache_hits as u64);
    }
}

/// Reusable state for the exact solvers; see the module docs.
#[derive(Clone, Debug, Default)]
pub struct SolveContext {
    pub(crate) arenas: Vec<FlowArena>,
    pub(crate) cores: CoreCache,
    incumbent: Option<Pair>,
    /// The graph of the previous solve — the memoised cores are valid for
    /// exactly this graph and no other.
    last_graph: Option<DiGraph>,
    pub(crate) metrics: ExactMetrics,
}

impl SolveContext {
    /// A fresh context (no incumbent, empty caches).
    #[must_use]
    pub fn new() -> Self {
        SolveContext::default()
    }

    /// Number of solves this context has served.
    #[must_use]
    pub fn solves(&self) -> usize {
        self.metrics.solves.get() as usize
    }

    /// Re-homes this context's lifetime counters in `registry` (the
    /// `dds_exact_*` series), transferring the values accumulated so far.
    /// Handles in the registry sum across every context attached to it.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.metrics.attach(registry);
    }

    /// Sum of arena reuse hits across all worker arenas (lifetime total).
    #[must_use]
    pub fn arena_reuse_hits(&self) -> usize {
        self.arenas.iter().map(FlowArena::reuse_hits).sum()
    }

    /// Core-memo hits across the context lifetime.
    #[must_use]
    pub fn core_cache_hits(&self) -> usize {
        self.cores.hits()
    }

    /// Drops the memoised cores (callers normally never need this — the
    /// per-solve graph-identity check does it when the graph changed).
    pub fn invalidate_cores(&mut self) {
        self.cores.clear();
    }

    /// Pre-solve bookkeeping: size the arena pool for `threads` workers and
    /// clear the core memo if `g` is not the graph of the previous solve
    /// (exact CSR comparison — a stale core mask would be
    /// correctness-bearing, so no hashing shortcuts here).
    pub(crate) fn prepare(&mut self, g: &DiGraph, threads: usize) {
        if self.arenas.len() < threads {
            self.arenas.resize_with(threads, FlowArena::new);
        }
        if self.last_graph.as_ref() != Some(g) {
            self.cores.clear();
            self.last_graph = Some(g.clone());
        }
        self.metrics.solves.inc();
    }

    /// The previous solve's witness re-validated against `g`: `None` when
    /// there is no incumbent or its vertex ids do not exist in `g`;
    /// otherwise the pair with its density recomputed on `g` — a genuine
    /// pair of `g`, hence a sound warm-start floor.
    pub(crate) fn seed_solution(&self, g: &DiGraph) -> Option<DdsSolution> {
        let pair = self.incumbent.as_ref()?;
        if pair.is_empty() {
            return None;
        }
        let n = g.n() as u64;
        let in_range = |vs: &[u32]| vs.iter().all(|&v| u64::from(v) < n);
        if !in_range(pair.s()) || !in_range(pair.t()) {
            return None;
        }
        Some(DdsSolution::from_pair(g, pair.clone()))
    }

    /// Records the solve's winning pair as the next incumbent.
    pub(crate) fn store_incumbent(&mut self, solution: &DdsSolution) {
        self.incumbent = (!solution.pair.is_empty()).then(|| solution.pair.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_graph::gen;

    #[test]
    fn graph_identity_ignores_edge_order_but_sees_changes() {
        // CSR construction canonicalises edge order, so the exact equality
        // check keeps the memo across same-graph solves regardless of how
        // the edge list was permuted…
        let g1 = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let g2 = DiGraph::from_edges(4, &[(2, 3), (0, 1), (1, 2)]).unwrap();
        let mut ctx = SolveContext::new();
        ctx.prepare(&g1, 1);
        let _ = ctx.cores.core(&g1, 1, 1);
        ctx.prepare(&g2, 1);
        assert_eq!(ctx.cores.len(), 1, "identical graph keeps the memo");
        // …and any real change — same n and m included — clears it.
        let g3 = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        ctx.prepare(&g3, 1);
        assert!(ctx.cores.is_empty(), "changed edge set drops the memo");
    }

    #[test]
    fn prepare_clears_cores_only_on_graph_change() {
        let g = gen::gnm(10, 30, 1);
        let mut ctx = SolveContext::new();
        ctx.prepare(&g, 1);
        let _ = ctx.cores.core(&g, 1, 1);
        assert_eq!(ctx.cores.len(), 1);
        ctx.prepare(&g, 2);
        assert_eq!(ctx.cores.len(), 1, "same graph keeps the memo");
        assert_eq!(ctx.arenas.len(), 2, "arena pool grew for the workers");
        let other = gen::gnm(10, 31, 1);
        ctx.prepare(&other, 1);
        assert!(ctx.cores.is_empty(), "new graph invalidates the memo");
        assert_eq!(ctx.solves(), 3);
    }

    #[test]
    fn seed_solution_validates_vertex_range() {
        let big = gen::complete_bipartite(3, 3);
        let mut ctx = SolveContext::new();
        let sol = DdsSolution::from_pair(&big, Pair::new(vec![0, 1, 2], vec![3, 4, 5]));
        ctx.store_incumbent(&sol);
        // Same graph: seed comes back with the same density.
        let seeded = ctx.seed_solution(&big).unwrap();
        assert_eq!(seeded.density, sol.density);
        // Smaller graph: ids 3..6 are out of range, no seed.
        let small = gen::path(3);
        assert!(ctx.seed_solution(&small).is_none());
        // Different graph with the ids in range: density is recomputed.
        let sparse = DiGraph::from_edges(6, &[(0, 3)]).unwrap();
        let reseeded = ctx.seed_solution(&sparse).unwrap();
        assert_eq!(reseeded.density, reseeded.pair.density(&sparse));
    }

    use dds_graph::DiGraph;
}
