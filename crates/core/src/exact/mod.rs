//! Exact DDS solvers: the `O(n²)`-ratio flow baseline and the paper's
//! divide-and-conquer search.

mod engine;
mod per_ratio;

pub use engine::{DcExact, ExactOptions, ExactReport, FlowExact};
