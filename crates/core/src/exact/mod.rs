//! Exact DDS solvers: the `O(n²)`-ratio flow baseline and the paper's
//! divide-and-conquer search, both running on a reusable [`SolveContext`].

mod context;
mod engine;
mod per_ratio;

pub use context::SolveContext;
pub use engine::{DcExact, ExactOptions, ExactReport, FlowExact};

pub(crate) use engine::run_with_context;
