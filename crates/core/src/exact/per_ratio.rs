//! Exact per-ratio search in β-space.
//!
//! For a fixed ratio `c = a/b` the search brackets
//! `β*(c) = max over pairs of 2abE/(b|S| + a|T|)` — the β-image of the
//! c-weighted density (see `dds-flow::decision`) — between an *achieved*
//! lower bound `l` and a *certified* upper bound `u`:
//!
//! * every guess is the **simplest rational strictly inside `(l, u)`**,
//!   which keeps flow capacities small and doubles as the termination
//!   certificate: candidate values have denominator ≤ `n(a+b)` (they are
//!   `2abE/D` with `D = b|S| + a|T| ≤ n(a+b)`), so once the simplest
//!   fraction in the interval is more complex than that, the interval is
//!   empty of candidates and `l` is the optimum;
//! * a cut that **finds** a pair jumps `l` to the pair's *exact* β-value
//!   (not the guess), so `l` only ever sits on achievable values;
//! * a cut that **certifies** lowers `u` to the guess; if the guess hit
//!   `β*` exactly, the maximal min cut recovers an optimal pair on the
//!   spot (`boundary`), closing the interval.
//!
//! Termination: certifications walk the Stern–Brocot tree toward `l`, so
//! the guess denominator grows at least Fibonacci-fast — `O(log max_den)`
//! consecutive certifications suffice — and improvements move `l` through
//! the finite candidate set monotonically.
//!
//! With `core_pruning`, each decision runs on the
//! `[⌈β/2a⌉, ⌈β/2b⌉]`-core: every maximiser of the cut objective at guess
//! `β` has `d⁺ ≥ β/(2a)` on the S side and `d⁻ ≥ β/(2b)` on the T side
//! within the pair (dropping a vertex below the threshold would increase
//! the objective), so restricting to the core preserves the decision and
//! every extractable optimum while shrinking the network.

use dds_flow::{beta_of_pair, decide_in_with, Decision, DecisionStats, FlowArena, FlowExecutor};
use dds_graph::{DiGraph, Pair, StMask};
use dds_num::{simplest_between, Frac};

/// The reusable machinery a ratio search borrows from its caller: the
/// worker's flow arena, a core provider (typically the `SolveContext`
/// memo table, possibly behind a mutex in the parallel search), and the
/// executor the Dinic inner loop runs on ([`SerialExecutor`] for the
/// serial engine, the shared [`WorkerPool`] when per-ratio parallelism is
/// enabled — either way the decisions are bit-identical).
///
/// [`SerialExecutor`]: dds_flow::SerialExecutor
/// [`WorkerPool`]: crate::pool::WorkerPool
pub(crate) struct RatioResources<'a> {
    /// Recyclable flow-network buffers (one per worker thread).
    pub arena: &'a mut FlowArena,
    /// Returns the full-graph `[x, y]`-core for the guess-derived
    /// thresholds.
    pub core_of: &'a mut dyn FnMut(u64, u64) -> StMask,
    /// Fork/join lanes for the flow phases of each decision.
    pub exec: &'a dyn FlowExecutor,
}

/// Result of one per-ratio search.
#[derive(Clone, Debug)]
pub(crate) struct RatioOutcome {
    /// Best pair with `β* > floor`, and its exact β-value (`None` when the
    /// ratio cannot beat the floor).
    pub best: Option<(Pair, Frac)>,
    /// Certified inclusive upper bound on `β*(c)` over **all** pairs; used
    /// by the divide-and-conquer driver to prune neighbouring ratio
    /// intervals via the γ transfer bound. In certify mode this is `β*(c)`
    /// itself whenever the search can prove it (see `beta_star_exact`),
    /// which is what lets the driver discard intervals that merely *tie*
    /// the incumbent.
    pub certified_upper: Frac,
    /// `Some(β*(c))` when the search proved the exact optimum: either the
    /// bracket closed (`l == u`), or certify mode ended with an achieved
    /// lower bound `l`, a strictly-certified upper bound, and a
    /// candidate-free open interval between them — which pins `β* = l`.
    pub beta_star_exact: Option<Frac>,
    /// Instrumentation for every flow decision run.
    pub decisions: Vec<DecisionStats>,
}

/// `⌈β / k⌉` for positive `β`, as a core threshold.
fn ceil_div(beta: Frac, k: u64) -> u64 {
    let den = beta
        .den()
        .checked_mul(i128::from(k))
        .expect("core threshold overflow");
    u64::try_from(Frac::new(beta.num(), den).ceil()).expect("core threshold fits u64")
}

/// Searches ratio `a/b` exactly. `floor_beta` filters: only pairs with
/// `β* > floor_beta` are reported in `best` (the caller passes the β-image
/// of the best density found so far).
///
/// `tighten` picks the search regime:
///
/// * `false` — **floor-fast**: the lower search bound starts at the floor,
///   so ratios that cannot beat the incumbent exit after a handful of
///   certifications. The certified upper bound then sits just above the
///   floor — useless for γ transfer. Right when no caller consumes
///   certificates (the all-ratios baseline, or DC with γ-pruning off).
/// * `true` — **certify**: the search brackets the true `β*(c)` from both
///   sides (lower bound starts at 0; the floor is tried as the *first
///   guess*, which restores most of the fast-exit behaviour), leaving
///   `certified_upper` within one candidate gap of `β*(c)`. That tight
///   bound is what lets the divide-and-conquer driver discard whole ratio
///   intervals.
#[allow(clippy::too_many_arguments)] // search knobs + borrowed resources
pub(crate) fn solve_ratio(
    g: &DiGraph,
    a: u64,
    b: u64,
    floor_beta: Frac,
    core_pruning: bool,
    tighten: bool,
    seed_pair: Option<&Pair>,
    res: &mut RatioResources<'_>,
) -> RatioOutcome {
    let n = g.n() as u64;
    let m = g.m() as u64;
    debug_assert!(a >= 1 && b >= 1 && a <= n && b <= n);

    // Inclusive upper bound before any flow: D = b|S| + a|T| ≥ a + b, so
    // β* ≤ 2abm/(a+b).
    let u0 = Frac::new(
        2i128 * i128::from(a) * i128::from(b) * i128::from(m),
        i128::from(a + b),
    );
    let max_den = i128::from(n) * i128::from(a + b);

    let floor = if floor_beta.is_negative() {
        Frac::ZERO
    } else {
        floor_beta
    };
    // Certify mode brackets β*(c) from 0; jump-starting the achieved lower
    // bound at a known pair's exact β-value (typically the incumbent best
    // pair, whose weighted-density bump dominates near its own ratio)
    // removes the log-many "climb from zero" flows per ratio.
    let seed = seed_pair
        .filter(|p| !p.is_empty())
        .map(|p| beta_of_pair(g, p, a, b))
        .unwrap_or(Frac::ZERO);
    let mut l = if tighten { seed } else { floor.max(seed) };
    let mut u = u0;
    // In certify mode, probing the floor first either jumps `l` past it or
    // slams `u` onto it — one flow either way.
    let mut first_guess = if tighten && l < floor && floor < u0 {
        Some(floor)
    } else {
        None
    };
    let mut best: Option<(Pair, Frac)> = None;
    let mut decisions = Vec::new();
    let full = StMask::full(g.n());
    // Consecutive guesses usually round to the same integer thresholds, so
    // keep the last core locally; threshold changes go through the caller's
    // provider (the `SolveContext` memo, shared across ratios and solves).
    let mut core_cache: Option<((u64, u64), StMask)> = None;
    // True once a `Certified { boundary: None }` decision set `u`: the final
    // upper bound is then *strictly* above β*, which (combined with an
    // achieved `l` and a candidate-free gap) pins β* = l exactly.
    let mut u_certified_strict = false;
    // Whether `l` is a sound lower bound on β*: certify mode starts at 0 or
    // an achieved pair value; floor-fast mode starts at the (possibly
    // unachievable) floor and becomes sound only once a pair sets it.
    let mut l_achieved = tighten;

    let mut iterations = 0usize;
    while l < u {
        iterations += 1;
        assert!(
            iterations < 200_000,
            "per-ratio search failed to converge (bug)"
        );
        let guess = match first_guess.take() {
            Some(f) if l < f && f < u => f,
            _ => {
                let simplest = simplest_between(l, u);
                if simplest.den() > max_den {
                    // No candidate β-value remains strictly inside (l, u).
                    break;
                }
                // In certify mode, guess inside the middle third of (l, u):
                // every outcome then shrinks the interval by ≥ 1/3 (Exceeds
                // raises l past the guess, Certified drops u onto it),
                // giving geometric convergence; plain simplest-in-interval
                // can shave slivers when the simplest fraction hugs an
                // endpoint. The interval-wide simplest is preferred when it
                // already lies in the middle third — its denominator (and
                // hence the scaled flow capacities) is minimal. In
                // floor-fast mode, hugging the floor is exactly the cheap
                // hopeless-exit behaviour, so the simplest guess stays.
                if !tighten {
                    simplest
                } else {
                    let third = (u - l) * Frac::new(1, 3);
                    let (lo3, hi3) = (l + third, u - third);
                    if lo3 < simplest && simplest < hi3 {
                        simplest
                    } else {
                        simplest_between(lo3, hi3)
                    }
                }
            }
        };
        let alive: &StMask = if core_pruning {
            let x = ceil_div(guess, 2 * a);
            let y = ceil_div(guess, 2 * b);
            let stale = !matches!(&core_cache, Some((key, _)) if *key == (x, y));
            if stale {
                core_cache = Some(((x, y), (res.core_of)(x, y)));
            }
            &core_cache.as_ref().expect("cache populated above").1
        } else {
            &full
        };
        let (decision, stats) = decide_in_with(res.arena, g, alive, a, b, guess, res.exec);
        decisions.push(stats);
        match decision {
            Decision::Exceeds(pair) => {
                let beta = beta_of_pair(g, &pair, a, b);
                debug_assert!(beta > guess, "found pair must beat the guess");
                l = beta;
                l_achieved = true;
                if beta > floor {
                    best = Some((pair, beta));
                }
            }
            Decision::Certified { boundary } => {
                if let Some(pair) = boundary {
                    debug_assert_eq!(beta_of_pair(g, &pair, a, b), guess);
                    if guess > floor {
                        best = Some((pair, guess));
                    }
                    l = guess; // optimum reached exactly: l == u ends the loop
                    l_achieved = true;
                } else {
                    u_certified_strict = true; // β* < guess = new u
                }
                u = guess;
            }
        }
    }
    // Pin β*(c) exactly when the bracket allows it. Soundness:
    // * `l == u` — an achieved value meets a certified bound; β* = l.
    // * certify mode, loop broke with `l < u` — then (l, u) holds no
    //   candidate β-value, `l ≤ β* ≤ u` (certify-mode `l` is always 0 or an
    //   achieved pair value), and β* is itself a candidate, so β* ∈ {l, u};
    //   a strict final certification rules out `u`, leaving β* = l.
    let beta_star_exact = if l_achieved && (l == u || u_certified_strict) {
        Some(l)
    } else {
        None
    };
    RatioOutcome {
        best,
        certified_upper: beta_star_exact.unwrap_or(u),
        beta_star_exact,
        decisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_graph::gen;
    use dds_num::candidate_ratios;
    use dds_xycore::xy_core_within;

    /// Test convenience: run a ratio search with throwaway resources.
    fn run(
        g: &DiGraph,
        a: u64,
        b: u64,
        floor_beta: Frac,
        core_pruning: bool,
        tighten: bool,
        seed_pair: Option<&Pair>,
    ) -> RatioOutcome {
        let mut arena = FlowArena::new();
        let mut core_of = |x: u64, y: u64| xy_core_within(g, &StMask::full(g.n()), x, y);
        let mut res = RatioResources {
            arena: &mut arena,
            core_of: &mut core_of,
            exec: &dds_flow::SerialExecutor,
        };
        solve_ratio(
            g,
            a,
            b,
            floor_beta,
            core_pruning,
            tighten,
            seed_pair,
            &mut res,
        )
    }

    /// Brute-force β*(c) over all non-empty pairs.
    fn brute_beta_star(g: &DiGraph, a: u64, b: u64) -> Frac {
        let n = g.n();
        let mut best = Frac::ZERO;
        for s_bits in 1u32..(1 << n) {
            for t_bits in 1u32..(1 << n) {
                let s: Vec<u32> = (0..n as u32).filter(|&v| s_bits >> v & 1 == 1).collect();
                let t: Vec<u32> = (0..n as u32).filter(|&v| t_bits >> v & 1 == 1).collect();
                let beta = beta_of_pair(g, &Pair::new(s, t), a, b);
                if beta > best {
                    best = beta;
                }
            }
        }
        best
    }

    fn check_all_ratios(g: &DiGraph, core_pruning: bool) {
        for r in candidate_ratios(g.n() as u64) {
            let (a, b) = (r.a(), r.b());
            let want = brute_beta_star(g, a, b);
            for tighten in [false, true] {
                let out = run(g, a, b, Frac::ZERO, core_pruning, tighten, None);
                let got = out.best.as_ref().map_or(Frac::ZERO, |(_, beta)| *beta);
                assert_eq!(
                    got, want,
                    "ratio {a}/{b} core={core_pruning} tighten={tighten}"
                );
                assert!(out.certified_upper >= want, "certificate must bound β*");
                if let Some((pair, beta)) = &out.best {
                    assert_eq!(beta_of_pair(g, pair, a, b), *beta);
                }
            }
        }
    }

    #[test]
    fn matches_brute_force_on_fixtures() {
        for g in [
            gen::complete_bipartite(2, 3),
            gen::out_star(4),
            gen::cycle(5),
            gen::path(5),
        ] {
            check_all_ratios(&g, false);
            check_all_ratios(&g, true);
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..4 {
            let g = gen::gnm(6, 14, seed);
            check_all_ratios(&g, false);
            check_all_ratios(&g, true);
        }
    }

    #[test]
    fn floor_prunes_hopeless_ratios() {
        let g = gen::complete_bipartite(2, 3);
        // β*(1/1) = 12/5; a floor above it must return None quickly.
        let out = run(&g, 1, 1, Frac::new(5, 2), false, false, None);
        assert!(out.best.is_none());
        assert!(out.certified_upper >= Frac::new(12, 5));
        // A floor just below it must still find the optimum.
        let out = run(
            &g,
            1,
            1,
            Frac::new(12, 5) - Frac::new(1, 1000),
            false,
            false,
            None,
        );
        assert_eq!(out.best.unwrap().1, Frac::new(12, 5));
        // Certify mode with a hopeless floor still produces a *tight*
        // certificate: β*(1/1) = 12/5, so the bound must sit within one
        // candidate gap of it, far below the floor.
        let out = run(&g, 1, 1, Frac::new(5, 2), false, true, None);
        assert!(out.best.is_none(), "floor filter still applies");
        assert!(out.certified_upper >= Frac::new(12, 5));
        assert!(
            out.certified_upper < Frac::new(5, 2),
            "tight certificate expected"
        );
    }

    #[test]
    fn core_pruning_shrinks_networks() {
        // Planted dense block in sparse background: the pruned decisions
        // must touch far fewer alive edges once the floor is meaningful.
        let p = gen::planted(40, 60, 4, 4, 1.0, 3);
        let g = &p.graph;
        let floor = p.pair.density(g).beta_lower_bound(1, 1);
        let pruned = run(g, 1, 1, floor, true, false, None);
        let unpruned = run(g, 1, 1, floor, false, false, None);
        let max_alive_pruned = pruned
            .decisions
            .iter()
            .map(|d| d.alive_edges)
            .max()
            .unwrap_or(0);
        let max_alive_unpruned = unpruned
            .decisions
            .iter()
            .map(|d| d.alive_edges)
            .max()
            .unwrap_or(0);
        assert!(
            max_alive_pruned < max_alive_unpruned,
            "core pruning should shrink the decision networks ({max_alive_pruned} vs {max_alive_unpruned})"
        );
        // And both agree on the answer.
        assert_eq!(
            pruned.best.map(|(_, beta)| beta),
            unpruned.best.map(|(_, beta)| beta)
        );
    }

    #[test]
    fn edgeless_graph_terminates_immediately() {
        let g = DiGraph::empty(4);
        let out = run(&g, 1, 1, Frac::ZERO, true, true, None);
        assert!(out.best.is_none());
        assert!(out.decisions.is_empty());
    }

    use dds_graph::DiGraph;
}
