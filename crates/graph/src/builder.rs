//! Mutable edge accumulator that produces immutable CSR graphs.

use crate::{DiGraph, VertexId};

/// Accumulates edges and builds a [`DiGraph`].
///
/// The DDS problem is defined on *simple* directed graphs, so by default the
/// builder drops self-loops and deduplicates parallel edges, counting what
/// it dropped (callers can surface those numbers as ingestion warnings).
/// Both policies are configurable for callers that pre-clean their input:
/// keeping self-loops is meaningful for DDS because a loop `(u, u)` counts
/// whenever `u ∈ S ∩ T`.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    min_vertices: usize,
    /// Highest endpoint id seen, including endpoints of dropped self-loops
    /// (a vertex mentioned in the input exists even if its edge does not).
    max_id_seen: Option<VertexId>,
    keep_self_loops: bool,
    dropped_self_loops: usize,
    dropped_parallel: usize,
}

impl GraphBuilder {
    /// A builder with no edges; the vertex count is inferred from the
    /// largest id seen.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder whose graph will have at least `n` vertices even if some
    /// are isolated.
    #[must_use]
    pub fn with_min_vertices(n: usize) -> Self {
        GraphBuilder {
            min_vertices: n,
            ..Self::default()
        }
    }

    /// Keep self-loops instead of dropping them (default: drop).
    #[must_use]
    pub fn keep_self_loops(mut self, keep: bool) -> Self {
        self.keep_self_loops = keep;
        self
    }

    /// Raises the minimum vertex count (used when a header declares more
    /// vertices than the edges mention). Never shrinks it.
    pub fn ensure_min_vertices(&mut self, n: usize) -> &mut Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Adds the directed edge `u → v`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.max_id_seen = Some(self.max_id_seen.map_or(u.max(v), |m| m.max(u).max(v)));
        if u == v && !self.keep_self_loops {
            self.dropped_self_loops += 1;
        } else {
            self.edges.push((u, v));
        }
        self
    }

    /// Number of self-loops dropped so far.
    #[must_use]
    pub fn dropped_self_loops(&self) -> usize {
        self.dropped_self_loops
    }

    /// Number of parallel duplicates dropped (populated by
    /// [`GraphBuilder::build`]).
    #[must_use]
    pub fn dropped_parallel_edges(&self) -> usize {
        self.dropped_parallel
    }

    /// Number of edges currently buffered (before deduplication).
    #[must_use]
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalises the CSR structure. Consumes nothing: the builder can keep
    /// accepting edges and build again, which the generators use to emit
    /// growing graph prefixes.
    #[must_use]
    pub fn build(&mut self) -> DiGraph {
        let n = self
            .max_id_seen
            .map_or(0, |m| m as usize + 1)
            .max(self.min_vertices);

        // Sort + dedup gives the sorted out-CSR directly.
        let mut edges = self.edges.clone();
        edges.sort_unstable();
        let before = edges.len();
        edges.dedup();
        self.dropped_parallel = before - edges.len();
        let m = edges.len();

        let mut out_offsets = vec![0usize; n + 1];
        for &(u, _) in &edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<VertexId> = edges.iter().map(|&(_, v)| v).collect();

        // Counting sort by target builds the in-CSR; sources come out in
        // ascending order because `edges` is sorted by (u, v).
        let mut in_offsets = vec![0usize; n + 1];
        for &(_, v) in &edges {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0 as VertexId; m];
        for &(u, v) in &edges {
            in_sources[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }

        DiGraph::from_csr(n, out_offsets, out_targets, in_offsets, in_sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_parallel_edges() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1)
            .add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.m(), 2);
        assert_eq!(b.dropped_parallel_edges(), 2);
    }

    #[test]
    fn drops_self_loops_by_default() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0).add_edge(0, 1).add_edge(2, 2);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(b.dropped_self_loops(), 2);
        assert_eq!(g.n(), 3, "self-loop endpoints still count as vertices");
    }

    #[test]
    fn can_keep_self_loops() {
        let mut b = GraphBuilder::new().keep_self_loops(true);
        b.add_edge(0, 0).add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(0, 0));
    }

    #[test]
    fn min_vertices_pads_isolated() {
        let mut b = GraphBuilder::with_min_vertices(10);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.n(), 10);
        assert_eq!(g.out_degree(9), 0);
    }

    #[test]
    fn vertex_count_inferred_from_max_id() {
        let mut b = GraphBuilder::new();
        b.add_edge(3, 7);
        let g = b.build();
        assert_eq!(g.n(), 8);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!((g.n(), g.m()), (0, 0));
        let g = GraphBuilder::with_min_vertices(4).build();
        assert_eq!((g.n(), g.m()), (4, 0));
    }

    #[test]
    fn build_is_repeatable_and_incremental() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        let g1 = b.build();
        b.add_edge(1, 2);
        let g2 = b.build();
        assert_eq!(g1.m(), 1);
        assert_eq!(g2.m(), 2);
        assert_eq!(g1.n(), 2);
        assert_eq!(g2.n(), 3);
    }

    #[test]
    fn in_adjacency_matches_out_adjacency() {
        let mut b = GraphBuilder::new();
        for (u, v) in [(0, 2), (1, 2), (3, 2), (2, 0), (2, 1)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        assert_eq!(g.in_neighbors(2), &[0, 1, 3]);
        assert_eq!(g.out_neighbors(2), &[0, 1]);
        // Each edge appears in exactly one out-row and one in-row.
        let out_total: usize = (0..g.n() as VertexId).map(|u| g.out_degree(u)).sum();
        let in_total: usize = (0..g.n() as VertexId).map(|v| g.in_degree(v)).sum();
        assert_eq!(out_total, g.m());
        assert_eq!(in_total, g.m());
    }
}
