//! Edge-list IO.
//!
//! The interchange format is the de-facto standard for graph corpora
//! (SNAP/KONECT): one `source target` pair per line, whitespace separated,
//! with `#` or `%` comment lines. Reading is buffered and reuses a single
//! line buffer (no per-line allocation), per the workspace IO guidance.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{DiGraph, GraphBuilder, GraphError};

/// Options controlling edge-list parsing.
#[derive(Clone, Debug)]
pub struct ParseOptions {
    /// Lines starting with any of these bytes are skipped.
    pub comment_prefixes: Vec<u8>,
    /// Keep self-loops instead of dropping them.
    pub keep_self_loops: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions {
            comment_prefixes: vec![b'#', b'%'],
            keep_self_loops: false,
        }
    }
}

/// Reads a directed edge list from `reader`.
///
/// # Errors
/// [`GraphError::Parse`] with a 1-based line number on malformed lines
/// (missing fields, trailing junk, non-numeric ids); [`GraphError::Io`] on
/// read failures.
pub fn read_edge_list<R: Read>(reader: R, opts: &ParseOptions) -> Result<DiGraph, GraphError> {
    let mut reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new().keep_self_loops(opts.keep_self_loops);
    let mut line = String::new();
    let mut line_no = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || opts.comment_prefixes.contains(&trimmed.as_bytes()[0]) {
            // Honour the vertex count written by `write_edge_list`, so
            // graphs with isolated vertices round-trip exactly.
            if let Some(n) = parse_vertex_count_header(trimmed) {
                builder.ensure_min_vertices(n);
            }
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let u = parse_vertex(fields.next(), line_no, "source")?;
        let v = parse_vertex(fields.next(), line_no, "target")?;
        if fields.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                message: format!("expected exactly two fields, got extra data in {trimmed:?}"),
            });
        }
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

/// Recognises the `write_edge_list` header (`# directed graph: N vertices,
/// M edges`) and returns `N`.
fn parse_vertex_count_header(comment: &str) -> Option<usize> {
    let mut tokens = comment.split_whitespace().peekable();
    while let Some(tok) = tokens.next() {
        if let Some(&next) = tokens.peek() {
            if next.trim_end_matches(',') == "vertices" {
                return tok.parse().ok();
            }
        }
    }
    None
}

fn parse_vertex(field: Option<&str>, line: usize, role: &str) -> Result<u32, GraphError> {
    let tok = field.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {role} vertex"),
    })?;
    tok.parse::<u32>().map_err(|e| GraphError::Parse {
        line,
        message: format!("invalid {role} vertex {tok:?}: {e}"),
    })
}

/// Reads an edge list from a file path.
///
/// # Errors
/// See [`read_edge_list`].
pub fn load_edge_list<P: AsRef<Path>>(path: P, opts: &ParseOptions) -> Result<DiGraph, GraphError> {
    read_edge_list(File::open(path)?, opts)
}

/// Writes `g` as an edge list (one `u\tv` line per edge, preceded by a
/// header comment with the vertex/edge counts).
///
/// # Errors
/// Propagates IO failures.
pub fn write_edge_list<W: Write>(g: &DiGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# directed graph: {} vertices, {} edges", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes `g` to a file path via [`write_edge_list`].
///
/// # Errors
/// Propagates IO failures.
pub fn save_edge_list<P: AsRef<Path>>(g: &DiGraph, path: P) -> Result<(), GraphError> {
    write_edge_list(g, File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<DiGraph, GraphError> {
        read_edge_list(text.as_bytes(), &ParseOptions::default())
    }

    #[test]
    fn parses_basic_edge_list() {
        let g = parse("0 1\n1 2\n2 0\n").unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let g = parse("# header\n% konect style\n\n  \n0\t1\n# trailing\n1 0\n").unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn handles_tabs_and_multiple_spaces() {
        let g = parse("0\t\t1\n2   3\n").unwrap();
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn rejects_missing_target() {
        let err = parse("0 1\n7\n").unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("target"), "{message}");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn rejects_non_numeric() {
        let err = parse("a b\n").unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("source"), "{message}");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn rejects_extra_fields() {
        let err = parse("0 1 5\n").unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn self_loop_policy() {
        let g = parse("0 0\n0 1\n").unwrap();
        assert_eq!(g.m(), 1, "default drops self-loops");
        let opts = ParseOptions {
            keep_self_loops: true,
            ..Default::default()
        };
        let g = read_edge_list("0 0\n0 1\n".as_bytes(), &opts).unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn header_preserves_isolated_vertices() {
        let g = DiGraph::from_edges(6, &[(0, 1)]).unwrap(); // vertices 2..5 isolated
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), &ParseOptions::default()).unwrap();
        assert_eq!(g2.n(), 6);
        assert_eq!(g, g2);
        // Headers from other tools are ignored gracefully.
        let g3 = parse("# some unrelated comment\n0 1\n").unwrap();
        assert_eq!(g3.n(), 2);
    }

    #[test]
    fn round_trip_through_bytes() {
        let g = DiGraph::from_edges(5, &[(0, 4), (4, 0), (1, 2), (3, 1)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), &ParseOptions::default()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn round_trip_through_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("dds_io_test_{}.txt", std::process::id()));
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path, &ParseOptions::default()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g, g2);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_edge_list(
            "/nonexistent/definitely/missing.txt",
            &ParseOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
