//! Directed-graph substrate for densest subgraph discovery (DDS).
//!
//! This crate owns everything the DDS algorithms need from a graph library:
//!
//! * [`DiGraph`] — an immutable, compressed-sparse-row (CSR) simple directed
//!   graph stored in **both** directions (out-adjacency and in-adjacency),
//!   because the `[x, y]`-core peels and the flow networks walk both;
//! * [`GraphBuilder`] — ingestion with configurable handling of self-loops
//!   and parallel edges (the DDS problem is defined on simple graphs);
//! * [`io`] — buffered edge-list reading/writing with precise error
//!   positions;
//! * [`gen`] — deterministic, seeded workload generators (uniform `G(n,m)`,
//!   directed power-law, planted dense blocks, plus closed-form fixtures)
//!   used by the test suite and the experiment harness as substitutes for
//!   the paper's real datasets (see `DESIGN.md §5`);
//! * [`Pair`] / [`StMask`] — the two representations of a candidate
//!   `(S, T)` answer, with exact density evaluation via
//!   [`dds_num::Density`].
//!
//! Vertices are dense `u32` indices (`0..n`), the representation the
//! performance guide favours for cache-friendly traversal of million-edge
//! graphs.
//!
//! # Example
//!
//! ```
//! use dds_graph::{DiGraph, Pair};
//!
//! let g = DiGraph::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
//! assert_eq!(g.out_neighbors(0), &[2, 3]);
//! assert_eq!(g.in_degree(2), 2);
//!
//! let pair = Pair::new(vec![0, 1], vec![2, 3]);
//! assert_eq!(pair.edges_between(&g), 4);
//! assert_eq!(pair.density(&g).to_f64(), 2.0); // 4/√(2·2)
//! ```

#![warn(missing_docs)]

mod builder;
mod dot;
mod error;
pub mod gen;
mod graph;
pub mod io;
mod stats;
mod view;

pub use builder::GraphBuilder;
pub use dot::{to_dot, weakly_connected_components};
pub use error::GraphError;
pub use graph::DiGraph;
pub use stats::{degree_histogram, GraphStats};
pub use view::{Pair, StMask};

/// Dense vertex identifier (`0..n`).
pub type VertexId = u32;
