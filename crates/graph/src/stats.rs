//! Summary statistics used by dataset tables and the CLI.

use crate::{DiGraph, VertexId};

/// Headline statistics of a directed graph (one row of the dataset table in
/// experiment E1).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Mean degree `m / n` (0 for the empty graph).
    pub avg_degree: f64,
    /// Vertices with no incident edges at all.
    pub isolated: usize,
    /// Fraction of edges `(u, v)` whose reverse `(v, u)` also exists.
    pub reciprocity: f64,
}

impl GraphStats {
    /// Computes all statistics in one pass over the CSR arrays.
    #[must_use]
    pub fn compute(g: &DiGraph) -> Self {
        let n = g.n();
        let m = g.m();
        let mut isolated = 0usize;
        for v in 0..n as VertexId {
            if g.out_degree(v) == 0 && g.in_degree(v) == 0 {
                isolated += 1;
            }
        }
        let mut reciprocal = 0usize;
        for (u, v) in g.edges() {
            if g.has_edge(v, u) {
                reciprocal += 1;
            }
        }
        GraphStats {
            n,
            m,
            max_out_degree: g.max_out_degree(),
            max_in_degree: g.max_in_degree(),
            avg_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
            isolated,
            reciprocity: if m == 0 {
                0.0
            } else {
                reciprocal as f64 / m as f64
            },
        }
    }
}

/// Histogram of out-degrees (index = degree, value = vertex count); the
/// companion for power-law sanity checks in the workload generators.
#[must_use]
pub fn degree_histogram(g: &DiGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_out_degree() + 1];
    for v in 0..g.n() as VertexId {
        hist[g.out_degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_small_graph() {
        // 0 ⇄ 1, 1 → 2, vertex 3 isolated.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2)]).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.n, 4);
        assert_eq!(s.m, 3);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.isolated, 1);
        assert!((s.avg_degree - 0.75).abs() < 1e-12);
        assert!((s.reciprocity - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::compute(&DiGraph::empty(0));
        assert_eq!(s.n, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.reciprocity, 0.0);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = crate::gen::out_star(5);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), g.n());
        assert_eq!(h[5], 1, "the centre");
        assert_eq!(h[0], 5, "the leaves");
    }
}
