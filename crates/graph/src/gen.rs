//! Deterministic, seeded graph generators.
//!
//! These stand in for the real directed corpora the SIGMOD 2020 evaluation
//! used (SNAP/KONECT graphs; see `DESIGN.md §5`). Three stochastic families
//! cover the behaviours that drive the algorithms' relative performance:
//!
//! * [`gnm`] — uniform random digraphs: flat degree distributions, the
//!   adversarial case where core-based pruning helps least;
//! * [`power_law`] — directed Chung–Lu graphs: heavy-tailed in/out degrees
//!   as observed in web/social corpora, the regime where `[x, y]`-cores are
//!   tiny and pruning dominates;
//! * [`planted`] — a background graph plus a dense `(S, T)` block with a
//!   known location, enabling recovery experiments (E9).
//!
//! Closed-form fixtures ([`complete_bipartite`], [`out_star`], [`cycle`],
//! [`path`]) have analytically known densest subgraphs and anchor the unit
//! tests.
//!
//! All generators take an explicit `seed` and use [`SmallRng`], so every
//! workload in the experiment harness is reproducible bit-for-bit.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{DiGraph, GraphBuilder, Pair, VertexId};

/// Uniform random simple digraph with exactly `m` distinct edges (no
/// self-loops), `G(n, m)` style.
///
/// # Panics
/// Panics if `m > n·(n−1)` (more edges than a simple digraph can hold).
#[must_use]
pub fn gnm(n: usize, m: usize, seed: u64) -> DiGraph {
    let max_edges = n.saturating_mul(n.saturating_sub(1));
    assert!(
        m <= max_edges,
        "G(n,m): requested {m} edges but max is {max_edges}"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_min_vertices(n);
    let mut seen: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(m * 2);
    // Rejection sampling is fine up to ~50% fill; switch to dense
    // enumeration + shuffle beyond that to bound the expected work.
    if m * 2 <= max_edges {
        while seen.len() < m {
            let u = rng.gen_range(0..n) as VertexId;
            let v = rng.gen_range(0..n) as VertexId;
            if u != v && seen.insert((u, v)) {
                builder.add_edge(u, v);
            }
        }
    } else {
        let mut all: Vec<(VertexId, VertexId)> = Vec::with_capacity(max_edges);
        for u in 0..n as VertexId {
            for v in 0..n as VertexId {
                if u != v {
                    all.push((u, v));
                }
            }
        }
        // Partial Fisher–Yates: the first `m` positions become the sample.
        for i in 0..m {
            let j = rng.gen_range(i..all.len());
            all.swap(i, j);
            builder.add_edge(all[i].0, all[i].1);
        }
    }
    builder.build()
}

/// Directed Chung–Lu power-law graph: vertex `i` gets out-weight and
/// in-weight proportional to `(i+1)^(−1/(α−1))` under independent random
/// rank permutations, and `m` distinct edges are sampled proportionally to
/// `w_out(u)·w_in(v)`.
///
/// `alpha` is the degree-distribution exponent (real corpora sit around
/// 2.1–2.5; smaller ⇒ heavier tail). The generator may return slightly
/// fewer than `m` edges on tiny graphs where rejection stalls; the attempt
/// budget is `50·m`.
///
/// # Panics
/// Panics if `n == 0` or `alpha <= 1`.
#[must_use]
pub fn power_law(n: usize, m: usize, alpha: f64, seed: u64) -> DiGraph {
    assert!(n > 0, "power_law requires n > 0");
    assert!(alpha > 1.0, "power_law requires alpha > 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let theta = 1.0 / (alpha - 1.0);

    // Independent permutations decouple hub-ness on the two sides, matching
    // the weak in/out-degree correlation of real corpora.
    let out_rank = random_permutation(n, &mut rng);
    let in_rank = random_permutation(n, &mut rng);

    let out_cdf = weight_cdf(theta, &out_rank);
    let in_cdf = weight_cdf(theta, &in_rank);

    let mut builder = GraphBuilder::with_min_vertices(n);
    let mut seen: HashSet<(VertexId, VertexId)> = HashSet::with_capacity(m * 2);
    let mut attempts = 0usize;
    let budget = m.saturating_mul(50).max(1024);
    while seen.len() < m && attempts < budget {
        attempts += 1;
        let u = sample_cdf(&out_cdf, &mut rng);
        let v = sample_cdf(&in_cdf, &mut rng);
        if u != v && seen.insert((u, v)) {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

fn random_permutation(n: usize, rng: &mut SmallRng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        p.swap(i, j);
    }
    p
}

fn weight_cdf(theta: f64, rank: &[usize]) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(rank.len());
    let mut acc = 0.0;
    for &r in rank {
        acc += ((r + 1) as f64).powf(-theta);
        cdf.push(acc);
    }
    cdf
}

fn sample_cdf(cdf: &[f64], rng: &mut SmallRng) -> VertexId {
    let total = *cdf.last().expect("non-empty cdf");
    let x = rng.gen_range(0.0..total);
    cdf.partition_point(|&c| c <= x) as VertexId
}

/// A graph with a planted dense block, and where it was planted.
#[derive(Clone, Debug)]
pub struct Planted {
    /// The full graph (background plus planted edges).
    pub graph: DiGraph,
    /// The planted `(S, T)` pair.
    pub pair: Pair,
}

/// Plants a dense `(S, T)` block into a uniform background.
///
/// The background is `G(n, background_m)`; `S` takes the first `s_size`
/// vertex ids after a random relabelling, `T` the next `t_size` (disjoint
/// from `S`), and every `S → T` edge is added independently with probability
/// `p_dense`. With `p_dense` near 1 the planted block's density
/// `≈ p·sqrt(s·t)` dominates any background subgraph, so exact solvers must
/// recover it (experiment E9).
///
/// # Panics
/// Panics if `s_size + t_size > n` or either side is empty.
#[must_use]
pub fn planted(
    n: usize,
    background_m: usize,
    s_size: usize,
    t_size: usize,
    p_dense: f64,
    seed: u64,
) -> Planted {
    assert!(
        s_size >= 1 && t_size >= 1,
        "planted block needs non-empty sides"
    );
    assert!(s_size + t_size <= n, "planted block must fit in the graph");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let ids = random_permutation(n, &mut rng);
    let s: Vec<VertexId> = ids[..s_size].iter().map(|&v| v as VertexId).collect();
    let t: Vec<VertexId> = ids[s_size..s_size + t_size]
        .iter()
        .map(|&v| v as VertexId)
        .collect();

    let background = gnm(n, background_m, seed);
    let mut builder = GraphBuilder::with_min_vertices(n);
    for (u, v) in background.edges() {
        builder.add_edge(u, v);
    }
    for &u in &s {
        for &v in &t {
            if rng.gen_bool(p_dense) {
                builder.add_edge(u, v);
            }
        }
    }
    Planted {
        graph: builder.build(),
        pair: Pair::new(s, t),
    }
}

/// Complete bipartite digraph: all edges from `S = {0..s}` to
/// `T = {s..s+t}`. Its DDS is `(S, T)` itself with density `sqrt(s·t)`.
#[must_use]
pub fn complete_bipartite(s: usize, t: usize) -> DiGraph {
    let mut b = GraphBuilder::with_min_vertices(s + t);
    for u in 0..s as VertexId {
        for v in 0..t as VertexId {
            b.add_edge(u, s as VertexId + v);
        }
    }
    b.build()
}

/// Out-star: centre `0` points at `k` leaves. DDS is `({0}, leaves)` with
/// density `sqrt(k)`.
#[must_use]
pub fn out_star(k: usize) -> DiGraph {
    let mut b = GraphBuilder::with_min_vertices(k + 1);
    for v in 1..=k as VertexId {
        b.add_edge(0, v);
    }
    b.build()
}

/// Directed cycle on `n ≥ 2` vertices. Density of `(V, V)` is `1`; that is
/// optimal.
#[must_use]
pub fn cycle(n: usize) -> DiGraph {
    assert!(n >= 2, "cycle needs at least 2 vertices");
    let mut b = GraphBuilder::with_min_vertices(n);
    for v in 0..n as VertexId {
        b.add_edge(v, ((v as usize + 1) % n) as VertexId);
    }
    b.build()
}

/// Directed path `0 → 1 → … → n−1`.
#[must_use]
pub fn path(n: usize) -> DiGraph {
    assert!(n >= 1, "path needs at least 1 vertex");
    let mut b = GraphBuilder::with_min_vertices(n);
    for v in 0..(n - 1) as VertexId {
        b.add_edge(v, v + 1);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count_and_simplicity() {
        let g = gnm(50, 400, 7);
        assert_eq!(g.n(), 50);
        assert_eq!(g.m(), 400);
        for (u, v) in g.edges() {
            assert_ne!(u, v, "no self-loops");
        }
    }

    #[test]
    fn gnm_dense_path_uses_enumeration() {
        // 10·9 = 90 max edges; request 80 (> half) to hit the dense branch.
        let g = gnm(10, 80, 3);
        assert_eq!(g.m(), 80);
        for (u, v) in g.edges() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn gnm_extremes() {
        assert_eq!(gnm(5, 0, 1).m(), 0);
        let full = gnm(5, 20, 1);
        assert_eq!(full.m(), 20, "complete digraph");
    }

    #[test]
    #[should_panic(expected = "max is")]
    fn gnm_rejects_impossible_m() {
        let _ = gnm(3, 7, 0);
    }

    #[test]
    fn gnm_is_deterministic_per_seed() {
        assert_eq!(gnm(40, 200, 42), gnm(40, 200, 42));
        assert_ne!(gnm(40, 200, 42), gnm(40, 200, 43));
    }

    #[test]
    fn power_law_shape() {
        let g = power_law(300, 1500, 2.2, 11);
        assert_eq!(g.n(), 300);
        assert!(
            g.m() >= 1400,
            "should reach close to target edges, got {}",
            g.m()
        );
        // Heavy tail: the max out-degree should far exceed the mean.
        let mean = g.m() as f64 / g.n() as f64;
        assert!(
            g.max_out_degree() as f64 > 3.0 * mean,
            "max out-degree {} vs mean {mean}",
            g.max_out_degree()
        );
    }

    #[test]
    fn power_law_is_deterministic_per_seed() {
        assert_eq!(power_law(100, 400, 2.5, 9), power_law(100, 400, 2.5, 9));
    }

    #[test]
    fn planted_block_present_and_dense() {
        let p = planted(100, 300, 6, 8, 1.0, 5);
        assert_eq!(p.pair.s().len(), 6);
        assert_eq!(p.pair.t().len(), 8);
        // p_dense = 1 ⇒ every S→T edge exists ⇒ density = √48.
        let d = p.pair.density(&p.graph);
        assert_eq!(d.edges, 48);
        // S and T are disjoint.
        let overlap = p.pair.s().iter().filter(|u| p.pair.t().contains(u)).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn fixtures_have_known_shape() {
        let kb = complete_bipartite(2, 3);
        assert_eq!((kb.n(), kb.m()), (5, 6));
        let star = out_star(4);
        assert_eq!((star.n(), star.m()), (5, 4));
        assert_eq!(star.out_degree(0), 4);
        let c = cycle(6);
        assert_eq!((c.n(), c.m()), (6, 6));
        assert!(c.has_edge(5, 0));
        let p = path(4);
        assert_eq!((p.n(), p.m()), (4, 3));
    }
}
