//! Immutable CSR directed graph.

use crate::{GraphBuilder, GraphError, VertexId};

/// A simple directed graph in compressed-sparse-row form, stored in both
/// directions.
///
/// The structure is immutable after construction (build one with
/// [`GraphBuilder`] or [`DiGraph::from_edges`]). Adjacency lists are sorted,
/// which gives `O(log d)` [`DiGraph::has_edge`] and cache-friendly linear
/// scans — the access pattern of every peeling loop and flow-network build
/// in the workspace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiGraph {
    n: usize,
    out_offsets: Vec<usize>,
    out_targets: Vec<VertexId>,
    in_offsets: Vec<usize>,
    in_sources: Vec<VertexId>,
}

impl DiGraph {
    /// Assembles a graph from pre-sorted CSR arrays. Internal: callers go
    /// through [`GraphBuilder`], which establishes the invariants (sorted,
    /// deduplicated, in/out views consistent).
    pub(crate) fn from_csr(
        n: usize,
        out_offsets: Vec<usize>,
        out_targets: Vec<VertexId>,
        in_offsets: Vec<usize>,
        in_sources: Vec<VertexId>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), n + 1);
        debug_assert_eq!(in_offsets.len(), n + 1);
        debug_assert_eq!(out_targets.len(), in_sources.len());
        DiGraph {
            n,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }

    /// Builds a graph with `n` vertices from an edge list, using default
    /// [`GraphBuilder`] policy (drop self-loops, deduplicate parallel
    /// edges).
    ///
    /// # Errors
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `≥ n`.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::with_min_vertices(n);
        for &(u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u.into(),
                    n,
                });
            }
            if v as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v.into(),
                    n,
                });
            }
            b.add_edge(u, v);
        }
        Ok(b.build())
    }

    /// The empty graph on `n` vertices.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        DiGraph {
            n,
            out_offsets: vec![0; n + 1],
            out_targets: Vec::new(),
            in_offsets: vec![0; n + 1],
            in_sources: Vec::new(),
        }
    }

    /// Number of vertices.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[must_use]
    pub fn m(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbours of `u`, sorted ascending.
    #[must_use]
    pub fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        let u = u as usize;
        &self.out_targets[self.out_offsets[u]..self.out_offsets[u + 1]]
    }

    /// In-neighbours of `v`, sorted ascending.
    #[must_use]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Out-degree of `u`.
    #[must_use]
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.out_neighbors(u).len()
    }

    /// In-degree of `v`.
    #[must_use]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Maximum out-degree over all vertices (0 for the empty graph).
    #[must_use]
    pub fn max_out_degree(&self) -> usize {
        (0..self.n)
            .map(|u| self.out_offsets[u + 1] - self.out_offsets[u])
            .max()
            .unwrap_or(0)
    }

    /// Maximum in-degree over all vertices (0 for the empty graph).
    #[must_use]
    pub fn max_in_degree(&self) -> usize {
        (0..self.n)
            .map(|v| self.in_offsets[v + 1] - self.in_offsets[v])
            .max()
            .unwrap_or(0)
    }

    /// `true` iff the edge `u → v` exists (binary search on the sorted
    /// adjacency row).
    #[must_use]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates all edges as `(source, target)` pairs in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n as VertexId)
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Extracts the subgraph induced by `keep` (vertices with
    /// `keep[v] == true`), relabelling vertices densely.
    ///
    /// Returns the subgraph together with the map from new ids to original
    /// ids (`original = map[new]`). Used by the exact search to materialise
    /// core-restricted instances once they are small.
    #[must_use]
    pub fn induced_subgraph(&self, keep: &[bool]) -> (DiGraph, Vec<VertexId>) {
        assert_eq!(keep.len(), self.n, "mask length must equal vertex count");
        let mut new_id = vec![VertexId::MAX; self.n];
        let mut to_old = Vec::new();
        for v in 0..self.n {
            if keep[v] {
                new_id[v] = to_old.len() as VertexId;
                to_old.push(v as VertexId);
            }
        }
        let mut b = GraphBuilder::with_min_vertices(to_old.len());
        for &old_u in &to_old {
            for &old_v in self.out_neighbors(old_u) {
                if keep[old_v as usize] {
                    b.add_edge(new_id[old_u as usize], new_id[old_v as usize]);
                }
            }
        }
        (b.build(), to_old)
    }

    /// The transpose graph (every edge reversed). O(1): the two CSR
    /// directions simply swap roles. Used by the `[x, y]`-core double sweep
    /// to reuse one peeling implementation for both orientations.
    #[must_use]
    pub fn reverse(&self) -> DiGraph {
        DiGraph {
            n: self.n,
            out_offsets: self.in_offsets.clone(),
            out_targets: self.in_sources.clone(),
            in_offsets: self.out_offsets.clone(),
            in_sources: self.out_targets.clone(),
        }
    }

    /// Returns the subgraph keeping only a subset of edges (used by the
    /// scalability experiments that sample edge fractions): `keep_edge` is
    /// called in [`DiGraph::edges`] order.
    #[must_use]
    pub fn filter_edges(&self, mut keep_edge: impl FnMut(VertexId, VertexId) -> bool) -> DiGraph {
        let mut b = GraphBuilder::with_min_vertices(self.n);
        for (u, v) in self.edges() {
            if keep_edge(u, v) {
                b.add_edge(u, v);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 → 1 → 3, 0 → 2 → 3, plus back edge 3 → 0.
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn counts_and_degrees() {
        let g = diamond();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 5);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_degree(3), 1);
        assert_eq!(g.max_out_degree(), 2);
        assert_eq!(g.max_in_degree(), 2);
    }

    #[test]
    fn adjacency_is_sorted() {
        let g = DiGraph::from_edges(5, &[(0, 4), (0, 1), (0, 3), (2, 0), (1, 0)]).unwrap();
        assert_eq!(g.out_neighbors(0), &[1, 3, 4]);
        assert_eq!(g.in_neighbors(0), &[1, 2]);
    }

    #[test]
    fn has_edge_and_edges_iterator() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(g.has_edge(3, 0));
        let collected: Vec<_> = g.edges().collect();
        assert_eq!(collected, vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::empty(3);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_out_degree(), 0);
        assert!(g.edges().next().is_none());
        let g0 = DiGraph::empty(0);
        assert_eq!(g0.n(), 0);
    }

    #[test]
    fn from_edges_validates_range() {
        let err = DiGraph::from_edges(2, &[(0, 5)]).unwrap_err();
        match err {
            GraphError::VertexOutOfRange { vertex, n } => {
                assert_eq!((vertex, n), (5, 2));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = diamond();
        // Keep {0, 2, 3}: edges 0→2, 2→3, 3→0 survive.
        let keep = vec![true, false, true, true];
        let (sub, map) = g.induced_subgraph(&keep);
        assert_eq!(sub.n(), 3);
        assert_eq!(map, vec![0, 2, 3]);
        assert_eq!(sub.m(), 3);
        assert!(sub.has_edge(0, 1)); // 0→2 relabelled
        assert!(sub.has_edge(1, 2)); // 2→3
        assert!(sub.has_edge(2, 0)); // 3→0
    }

    #[test]
    fn induced_subgraph_empty_mask() {
        let g = diamond();
        let (sub, map) = g.induced_subgraph(&[false; 4]);
        assert_eq!(sub.n(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn reverse_transposes_every_edge() {
        let g = diamond();
        let r = g.reverse();
        assert_eq!(r.n(), g.n());
        assert_eq!(r.m(), g.m());
        for (u, v) in g.edges() {
            assert!(r.has_edge(v, u));
        }
        assert_eq!(r.reverse(), g, "reverse is an involution");
        assert_eq!(r.out_degree(3), g.in_degree(3));
    }

    #[test]
    fn filter_edges_subsets() {
        let g = diamond();
        let h = g.filter_edges(|u, _v| u != 0);
        assert_eq!(h.n(), 4);
        assert_eq!(h.m(), 3);
        assert!(!h.has_edge(0, 1));
        assert!(h.has_edge(3, 0));
    }
}
