//! Graphviz DOT export, with optional `(S, T)` highlighting.

use std::fmt::Write as _;

use crate::{DiGraph, Pair, VertexId};

/// Renders `g` as a Graphviz `digraph`. When a pair is supplied, `S`
/// vertices are boxes, `T` vertices are filled ellipses, overlap vertices
/// get both treatments, and `S → T` edges are bold — so the densest pair
/// pops out of `dot -Tsvg` immediately.
///
/// Intended for case studies and documentation figures; not optimised for
/// very large graphs (the output is `O(n + m)` text).
#[must_use]
pub fn to_dot(g: &DiGraph, highlight: Option<&Pair>) -> String {
    let mut in_s = vec![false; g.n()];
    let mut in_t = vec![false; g.n()];
    if let Some(pair) = highlight {
        for &u in pair.s() {
            in_s[u as usize] = true;
        }
        for &v in pair.t() {
            in_t[v as usize] = true;
        }
    }
    let mut out = String::from("digraph dds {\n  rankdir=LR;\n  node [shape=circle];\n");
    for v in 0..g.n() {
        let attrs = match (in_s[v], in_t[v]) {
            (true, true) => " [shape=box, style=filled, fillcolor=plum]",
            (true, false) => " [shape=box, style=filled, fillcolor=lightblue]",
            (false, true) => " [style=filled, fillcolor=lightsalmon]",
            (false, false) => "",
        };
        let _ = writeln!(out, "  {v}{attrs};");
    }
    for (u, v) in g.edges() {
        let bold = in_s[u as usize] && in_t[v as usize];
        let attrs = if bold {
            " [penwidth=2.5, color=crimson]"
        } else {
            ""
        };
        let _ = writeln!(out, "  {u} -> {v}{attrs};");
    }
    out.push_str("}\n");
    out
}

/// Labels the weakly connected components of `g` (edge direction ignored).
///
/// Returns `(labels, count)` where `labels[v] ∈ 0..count`; labels are
/// assigned in order of first discovery, so output is deterministic.
#[must_use]
pub fn weakly_connected_components(g: &DiGraph) -> (Vec<u32>, usize) {
    const UNSEEN: u32 = u32::MAX;
    let mut label = vec![UNSEEN; g.n()];
    let mut count = 0u32;
    let mut stack: Vec<VertexId> = Vec::new();
    for start in 0..g.n() as VertexId {
        if label[start as usize] != UNSEEN {
            continue;
        }
        label[start as usize] = count;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &w in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
                if label[w as usize] == UNSEEN {
                    label[w as usize] = count;
                    stack.push(w);
                }
            }
        }
        count += 1;
    }
    (label, count as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn dot_contains_every_vertex_and_edge() {
        let g = gen::complete_bipartite(2, 2);
        let dot = to_dot(&g, None);
        assert!(dot.starts_with("digraph dds {"));
        assert!(dot.trim_end().ends_with('}'));
        for v in 0..4 {
            assert!(dot.contains(&format!("  {v}")), "{dot}");
        }
        assert_eq!(dot.matches(" -> ").count(), g.m());
    }

    #[test]
    fn highlighting_marks_roles_and_pair_edges() {
        let g = gen::complete_bipartite(2, 2);
        let pair = Pair::new(vec![0, 1], vec![2, 3]);
        let dot = to_dot(&g, Some(&pair));
        assert_eq!(dot.matches("lightblue").count(), 2, "S boxes");
        assert_eq!(dot.matches("lightsalmon").count(), 2, "T fills");
        assert_eq!(dot.matches("crimson").count(), 4, "pair edges bold");
    }

    #[test]
    fn overlap_vertices_get_the_combined_style() {
        let g = DiGraph::from_edges(2, &[(0, 1), (1, 0)]).unwrap();
        let pair = Pair::new(vec![0, 1], vec![0, 1]);
        let dot = to_dot(&g, Some(&pair));
        assert_eq!(dot.matches("plum").count(), 2);
    }

    #[test]
    fn components_of_disconnected_graph() {
        // {0,1,2} cycle ⊎ {3→4} ⊎ isolated 5.
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[3], labels[5]);
    }

    #[test]
    fn direction_is_ignored_for_weak_connectivity() {
        // 0→1←2: weakly one component despite no directed path 0→2.
        let g = DiGraph::from_edges(3, &[(0, 1), (2, 1)]).unwrap();
        let (_, count) = weakly_connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let (labels, count) = weakly_connected_components(&DiGraph::empty(0));
        assert!(labels.is_empty());
        assert_eq!(count, 0);
        let (_, count) = weakly_connected_components(&DiGraph::empty(4));
        assert_eq!(count, 4, "isolated vertices are singleton components");
    }

    use crate::DiGraph;
}
