//! Candidate answers: explicit `(S, T)` pairs and boolean masks.

use dds_num::Density;

use crate::{DiGraph, VertexId};

/// An explicit candidate answer to the DDS problem: the vertex lists `S`
/// (sources) and `T` (targets). `S` and `T` may overlap; both must be
/// non-empty for a density to exist.
///
/// `Pair`s are the *output* type of every solver in `dds-core`; they are
/// normalised (sorted, deduplicated) on construction so results compare
/// structurally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pair {
    s: Vec<VertexId>,
    t: Vec<VertexId>,
}

impl Pair {
    /// Creates a pair, sorting and deduplicating both sides.
    #[must_use]
    pub fn new(mut s: Vec<VertexId>, mut t: Vec<VertexId>) -> Self {
        s.sort_unstable();
        s.dedup();
        t.sort_unstable();
        t.dedup();
        Pair { s, t }
    }

    /// The source side `S` (sorted, deduplicated).
    #[must_use]
    pub fn s(&self) -> &[VertexId] {
        &self.s
    }

    /// The target side `T` (sorted, deduplicated).
    #[must_use]
    pub fn t(&self) -> &[VertexId] {
        &self.t
    }

    /// `true` iff either side is empty (no density defined).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.s.is_empty() || self.t.is_empty()
    }

    /// Number of edges of `g` going from `S` to `T`.
    ///
    /// Marks `T` in a scratch bitmap and scans the out-lists of `S`
    /// (`O(|S| + Σ d⁺(S))`).
    #[must_use]
    pub fn edges_between(&self, g: &DiGraph) -> u64 {
        let mut in_t = vec![false; g.n()];
        for &v in &self.t {
            in_t[v as usize] = true;
        }
        let mut count = 0u64;
        for &u in &self.s {
            for &v in g.out_neighbors(u) {
                if in_t[v as usize] {
                    count += 1;
                }
            }
        }
        count
    }

    /// The exact density `|E(S,T)| / sqrt(|S|·|T|)` of this pair in `g`.
    ///
    /// Returns [`Density::ZERO`] for pairs with an empty side.
    #[must_use]
    pub fn density(&self, g: &DiGraph) -> Density {
        if self.is_empty() {
            return Density::ZERO;
        }
        Density::new(
            self.edges_between(g),
            self.s.len() as u64,
            self.t.len() as u64,
        )
    }

    /// Converts to mask form over a graph with `n` vertices.
    #[must_use]
    pub fn to_mask(&self, n: usize) -> StMask {
        let mut mask = StMask::empty(n);
        for &u in &self.s {
            mask.in_s[u as usize] = true;
        }
        for &v in &self.t {
            mask.in_t[v as usize] = true;
        }
        mask
    }

    /// Relabels the pair through `map` (`map[new] = old`), producing a pair
    /// in the original id space. Used when solvers work on core-restricted
    /// subgraphs.
    #[must_use]
    pub fn relabel(&self, map: &[VertexId]) -> Pair {
        Pair::new(
            self.s.iter().map(|&u| map[u as usize]).collect(),
            self.t.iter().map(|&v| map[v as usize]).collect(),
        )
    }
}

/// Membership-mask form of an `(S, T)` pair over a fixed vertex range.
///
/// Peeling algorithms operate on masks (O(1) membership flips); convert to
/// [`Pair`] for reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StMask {
    /// `in_s[v]` — is `v` currently in `S`?
    pub in_s: Vec<bool>,
    /// `in_t[v]` — is `v` currently in `T`?
    pub in_t: Vec<bool>,
}

impl StMask {
    /// All-false masks over `n` vertices.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        StMask {
            in_s: vec![false; n],
            in_t: vec![false; n],
        }
    }

    /// Masks with every vertex on both sides (the starting state of every
    /// peel).
    #[must_use]
    pub fn full(n: usize) -> Self {
        StMask {
            in_s: vec![true; n],
            in_t: vec![true; n],
        }
    }

    /// Number of vertices in `S`.
    #[must_use]
    pub fn s_count(&self) -> usize {
        self.in_s.iter().filter(|&&b| b).count()
    }

    /// Number of vertices in `T`.
    #[must_use]
    pub fn t_count(&self) -> usize {
        self.in_t.iter().filter(|&&b| b).count()
    }

    /// `true` iff either side is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.s_count() == 0 || self.t_count() == 0
    }

    /// Number of edges of `g` from masked `S` to masked `T`.
    #[must_use]
    pub fn edges_between(&self, g: &DiGraph) -> u64 {
        let mut count = 0u64;
        for u in 0..g.n() {
            if self.in_s[u] {
                for &v in g.out_neighbors(u as VertexId) {
                    if self.in_t[v as usize] {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    /// Exact density of the masked pair ([`Density::ZERO`] if a side is
    /// empty).
    #[must_use]
    pub fn density(&self, g: &DiGraph) -> Density {
        let (s, t) = (self.s_count(), self.t_count());
        if s == 0 || t == 0 {
            return Density::ZERO;
        }
        Density::new(self.edges_between(g), s as u64, t as u64)
    }

    /// Converts to explicit list form.
    #[must_use]
    pub fn to_pair(&self) -> Pair {
        let s = (0..self.in_s.len() as VertexId)
            .filter(|&v| self.in_s[v as usize])
            .collect();
        let t = (0..self.in_t.len() as VertexId)
            .filter(|&v| self.in_t[v as usize])
            .collect();
        Pair::new(s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k23() -> DiGraph {
        // Complete bipartite S = {0,1} → T = {2,3,4}.
        DiGraph::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]).unwrap()
    }

    #[test]
    fn pair_normalisation() {
        let p = Pair::new(vec![3, 1, 3], vec![2, 2, 0]);
        assert_eq!(p.s(), &[1, 3]);
        assert_eq!(p.t(), &[0, 2]);
    }

    #[test]
    fn density_of_complete_bipartite() {
        let g = k23();
        let p = Pair::new(vec![0, 1], vec![2, 3, 4]);
        assert_eq!(p.edges_between(&g), 6);
        // 6/√6 = √6 ≈ 2.449.
        let d = p.density(&g);
        assert_eq!(d, Density::new(6, 2, 3));
        assert!((d.to_f64() - 6.0 / 6.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn overlapping_sides_count_loops_only_if_present() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let p = Pair::new(vec![0, 1, 2], vec![0, 1, 2]);
        assert_eq!(p.edges_between(&g), 3);
        assert_eq!(p.density(&g), Density::new(3, 3, 3));
    }

    #[test]
    fn empty_pair_density_is_zero() {
        let g = k23();
        assert_eq!(Pair::new(vec![], vec![1]).density(&g), Density::ZERO);
        assert_eq!(Pair::new(vec![1], vec![]).density(&g), Density::ZERO);
        assert!(Pair::new(vec![], vec![]).is_empty());
    }

    #[test]
    fn mask_round_trip() {
        let g = k23();
        let p = Pair::new(vec![0, 1], vec![2, 4]);
        let mask = p.to_mask(g.n());
        assert_eq!(mask.s_count(), 2);
        assert_eq!(mask.t_count(), 2);
        assert_eq!(mask.to_pair(), p);
        assert_eq!(mask.edges_between(&g), p.edges_between(&g));
        assert_eq!(mask.density(&g), p.density(&g));
    }

    #[test]
    fn full_and_empty_masks() {
        let g = k23();
        let full = StMask::full(g.n());
        assert_eq!(full.edges_between(&g), 6);
        assert!(!full.is_empty());
        let empty = StMask::empty(g.n());
        assert!(empty.is_empty());
        assert_eq!(empty.density(&g), Density::ZERO);
    }

    #[test]
    fn relabel_maps_back_to_original_ids() {
        let map = vec![10, 20, 30];
        let p = Pair::new(vec![0, 2], vec![1]);
        let r = p.relabel(&map);
        assert_eq!(r.s(), &[10, 30]);
        assert_eq!(r.t(), &[20]);
    }
}
