//! Error type for graph construction and IO.

use std::fmt;
use std::io;

/// Errors produced while building or (de)serializing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A line of an edge list could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// An edge referenced a vertex outside the declared vertex range.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The declared number of vertices.
        n: usize,
    },
    /// The requested construction is impossible (e.g. more distinct edges
    /// than a simple directed graph can hold).
    Invalid(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::Invalid(msg) => write!(f, "invalid graph construction: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: bad token");
        let e = GraphError::VertexOutOfRange { vertex: 9, n: 4 };
        assert!(e.to_string().contains("vertex 9"));
        let e = GraphError::Invalid("too many edges".into());
        assert!(e.to_string().contains("too many edges"));
        let e: GraphError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e: GraphError = io::Error::other("inner").into();
        assert!(e.source().is_some());
        assert!(GraphError::Invalid("x".into()).source().is_none());
    }
}
