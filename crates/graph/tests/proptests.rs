//! Property tests for the graph substrate.

use dds_graph::io::{read_edge_list, write_edge_list, ParseOptions};
use dds_graph::{GraphBuilder, Pair, VertexId};
use proptest::prelude::*;

/// Arbitrary edge list over at most `max_n` vertices.
fn edges_strategy(max_n: u32, max_m: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_n, 0..max_n), 0..max_m)
}

proptest! {
    /// CSR invariants: degrees sum to m on both sides, adjacency sorted,
    /// has_edge agrees with the edge iterator.
    #[test]
    fn csr_invariants(edges in edges_strategy(40, 200)) {
        let mut b = GraphBuilder::new();
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build();
        let out_sum: usize = (0..g.n() as VertexId).map(|u| g.out_degree(u)).sum();
        let in_sum: usize = (0..g.n() as VertexId).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.m());
        prop_assert_eq!(in_sum, g.m());
        for u in 0..g.n() as VertexId {
            let row = g.out_neighbors(u);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "sorted + dedup");
            for &v in row {
                prop_assert!(g.has_edge(u, v));
                prop_assert!(g.in_neighbors(v).contains(&u));
            }
        }
    }

    /// Round trip: write → read reproduces the graph exactly.
    #[test]
    fn io_round_trip(edges in edges_strategy(30, 120)) {
        let mut b = GraphBuilder::new();
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), &ParseOptions::default()).unwrap();
        prop_assert_eq!(g, g2);
    }

    /// Pair density agrees with a naive double loop over has_edge.
    #[test]
    fn pair_edge_count_matches_naive(
        edges in edges_strategy(20, 80),
        s in prop::collection::vec(0u32..20, 1..8),
        t in prop::collection::vec(0u32..20, 1..8),
    ) {
        let mut b = GraphBuilder::with_min_vertices(20);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build();
        let pair = Pair::new(s, t);
        let naive: u64 = pair
            .s()
            .iter()
            .map(|&u| pair.t().iter().filter(|&&v| g.has_edge(u, v)).count() as u64)
            .sum();
        prop_assert_eq!(pair.edges_between(&g), naive);
    }

    /// Induced subgraphs keep exactly the edges with both endpoints kept.
    #[test]
    fn induced_subgraph_edge_set(
        edges in edges_strategy(25, 100),
        keep_bits in prop::collection::vec(any::<bool>(), 25),
    ) {
        let mut b = GraphBuilder::with_min_vertices(25);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build();
        let (sub, map) = g.induced_subgraph(&keep_bits);
        let expected: usize = g
            .edges()
            .filter(|&(u, v)| keep_bits[u as usize] && keep_bits[v as usize])
            .count();
        prop_assert_eq!(sub.m(), expected);
        for (u, v) in sub.edges() {
            prop_assert!(g.has_edge(map[u as usize], map[v as usize]));
        }
    }
}

#[test]
fn generators_are_deterministic() {
    use dds_graph::gen;
    assert_eq!(gen::gnm(64, 256, 1), gen::gnm(64, 256, 1));
    assert_eq!(
        gen::power_law(64, 256, 2.3, 1),
        gen::power_law(64, 256, 2.3, 1)
    );
    let a = gen::planted(60, 120, 4, 5, 1.0, 2);
    let b = gen::planted(60, 120, 4, 5, 1.0, 2);
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.pair, b.pair);
}
