//! The coordinator's TCP runtime: accept loop, per-connection readers,
//! and the single-threaded merge loop that owns the [`ClusterCore`].
//!
//! All protocol work funnels through one mpsc channel into the thread
//! that owns the core, so the merge itself stays single-threaded and
//! deterministic; sockets and the straggler clock live out here. The
//! accept thread shuts down the same way [`dds_obs::AdminServer`] does:
//! a stop flag plus one dummy connection to unblock `accept`.
//!
//! # Straggler policy
//!
//! With `--straggler-ms T`, an epoch that *could* seal degraded (some
//! slot has shipped past the frontier while another lags) waits up to
//! `T` for the laggard, then the runtime force-seals every overdue
//! epoch with the sound inflated bounds of
//! [`ClusterCore::seal_next`]`(true)`. Without it the coordinator is
//! strict: epochs seal only fully fresh, and an outage stalls the
//! frontier until the shard returns (the kill/restore drill runs with
//! a straggler window for exactly this reason).

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use dds_obs::{Counter, Gauge, Registry, StatusBoard};

use crate::coord::{ClusterConfig, ClusterCore, ClusterEpoch};
use crate::wire::{read_frame, read_preamble, write_frame, Frame, ShardDigest, WireError};

/// Cluster-tier metrics, registered under `dds_cluster_*`. Standalone
/// until [`ClusterMetrics::attach_obs`] rebinds every cell into a
/// registry, carrying current values over — the same alias machinery as
/// [`dds_obs::LagGauges`].
#[derive(Debug)]
pub struct ClusterMetrics {
    /// Epochs sealed (`dds_cluster_epochs_total`).
    pub epochs: Counter,
    /// Seals forced by the straggler policy
    /// (`dds_cluster_degraded_total`).
    pub degraded: Counter,
    /// Digest payload bytes accepted
    /// (`dds_cluster_digest_bytes_total`).
    pub digest_bytes: Counter,
    /// Merged refreshes (`dds_cluster_refreshes_total`).
    pub refreshes: Counter,
    /// Escalated merged solves (`dds_cluster_escalations_total`).
    pub escalations: Counter,
    /// Per-slot seal lag in epochs
    /// (`dds_cluster_shard_lag_epochs_{k}`).
    pub shard_lag: Vec<Gauge>,
}

impl ClusterMetrics {
    /// Unregistered cells for `shards` slots.
    #[must_use]
    pub fn standalone(shards: usize) -> Self {
        ClusterMetrics {
            epochs: Counter::standalone(),
            degraded: Counter::standalone(),
            digest_bytes: Counter::standalone(),
            refreshes: Counter::standalone(),
            escalations: Counter::standalone(),
            shard_lag: (0..shards).map(|_| Gauge::standalone()).collect(),
        }
    }

    /// Rebinds every cell into `registry`, carrying values over.
    pub fn attach_obs(&mut self, registry: &Registry) {
        let counter = |old: &mut Counter, name: &str| {
            let new = registry.counter(name);
            new.add(old.get());
            *old = new;
        };
        counter(&mut self.epochs, "dds_cluster_epochs_total");
        counter(&mut self.degraded, "dds_cluster_degraded_total");
        counter(&mut self.digest_bytes, "dds_cluster_digest_bytes_total");
        counter(&mut self.refreshes, "dds_cluster_refreshes_total");
        counter(&mut self.escalations, "dds_cluster_escalations_total");
        for (k, old) in self.shard_lag.iter_mut().enumerate() {
            let new = registry.gauge(&format!("dds_cluster_shard_lag_epochs_{k}"));
            new.set(old.get());
            *old = new;
        }
    }
}

/// Runtime options of [`run_coordinator`].
#[derive(Debug, Default)]
pub struct CoordinatorOptions {
    /// Force degraded seals after a laggard holds the frontier this
    /// long (`None` = strict, wait forever).
    pub straggler: Option<Duration>,
    /// Register `dds_cluster_*` metrics here.
    pub registry: Option<Registry>,
    /// Admin-plane status board to keep current (`shards[]`, seals).
    pub status: Option<Arc<StatusBoard>>,
}

/// What one coordinator run merged and certified.
#[derive(Clone, Debug)]
pub struct CoordinatorReport {
    /// Epochs sealed.
    pub epochs: u64,
    /// Seals forced degraded.
    pub degraded: u64,
    /// Merged refreshes.
    pub refreshes: u64,
    /// Escalated merged solves.
    pub escalations: u64,
    /// Digest payload bytes accepted.
    pub digest_bytes: u64,
    /// Highest event-file offset any digest reported (the raw-byte
    /// denominator of the digest-traffic budget).
    pub raw_bytes: u64,
    /// Canonical bytes of the final worker-determined merged state
    /// ([`ClusterCore::state_digest`]).
    pub state_digest: Vec<u8>,
    /// The last sealed epoch.
    pub last: Option<ClusterEpoch>,
}

enum Ctrl {
    Hello {
        hello: crate::wire::Hello,
        reply: Sender<Result<u64, String>>,
    },
    Digest {
        digest: ShardDigest,
        bytes: u64,
    },
    Bye {
        shard: u32,
    },
    Gone {
        shard: u32,
    },
}

/// Reads one worker connection, forwarding frames to the merge loop.
/// The `HelloAck` is written back from here once the core has vetted
/// the identity; a rejected worker sees its connection close.
fn serve_connection(stream: TcpStream, tx: &Sender<Ctrl>) {
    let mut shard: Option<u32> = None;
    let result = (|| -> Result<(), WireError> {
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        read_preamble(&mut reader)?;
        loop {
            match read_frame(&mut reader)? {
                None => return Ok(()),
                Some((Frame::Hello(hello), _)) => {
                    let (reply, answer) = mpsc::channel();
                    if tx.send(Ctrl::Hello { hello, reply }).is_err() {
                        return Ok(());
                    }
                    match answer.recv() {
                        Ok(Ok(resume_from)) => {
                            shard = Some(hello.shard);
                            write_frame(&mut writer, Frame::HelloAck { resume_from })?;
                        }
                        Ok(Err(msg)) => return Err(WireError::Protocol(msg)),
                        Err(_) => return Ok(()),
                    }
                }
                Some((Frame::Digest(digest), bytes)) => {
                    if tx.send(Ctrl::Digest { digest, bytes }).is_err() {
                        return Ok(());
                    }
                }
                Some((Frame::Bye { shard: s }, _)) => {
                    shard = None;
                    let _ = tx.send(Ctrl::Bye { shard: s });
                    return Ok(());
                }
                Some((Frame::HelloAck { .. }, _)) => {
                    return Err(WireError::Protocol(
                        "unexpected HelloAck from a worker".to_string(),
                    ))
                }
            }
        }
    })();
    drop(result);
    // EOF or error before a clean Bye: the slot may reconnect (the
    // kill/restore path), so this only marks it disconnected.
    if let Some(shard) = shard {
        let _ = tx.send(Ctrl::Gone { shard });
    }
}

/// Runs the coordinator over an already-bound listener until every
/// slot has signed off and every shipped epoch is sealed. `on_seal`
/// fires once per sealed epoch, in order — the serving loop's
/// publish/print hook.
///
/// # Errors
/// Returns [`WireError`] on listener failure or a digest that desyncs
/// the merge (a protocol violation; certification cannot continue).
pub fn run_coordinator(
    config: ClusterConfig,
    listener: TcpListener,
    opts: &CoordinatorOptions,
    mut on_seal: impl FnMut(&ClusterEpoch),
) -> Result<CoordinatorReport, WireError> {
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<Ctrl>();
    let accept = {
        let stop = Arc::clone(&stop);
        let tx = tx.clone();
        thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        let tx = tx.clone();
                        thread::spawn(move || serve_connection(stream, &tx));
                    }
                    Err(_) => break,
                }
            }
        })
    };
    drop(tx);

    let mut metrics = ClusterMetrics::standalone(config.shards);
    if let Some(registry) = &opts.registry {
        metrics.attach_obs(registry);
    }
    if let Some(status) = &opts.status {
        status.init_shards(config.shards);
    }
    let mut core = ClusterCore::new(config);
    let mut pending_since: Option<Instant> = None;
    let mut last: Option<ClusterEpoch> = None;

    let result = (|| -> Result<(), WireError> {
        loop {
            match rx.recv_timeout(Duration::from_millis(25)) {
                Ok(Ctrl::Hello { hello, reply }) => {
                    let answer = core.hello(&hello).map_err(|e| e.to_string());
                    let _ = reply.send(answer);
                }
                Ok(Ctrl::Digest { digest, bytes }) => {
                    let (shard, epoch, tail) = (digest.shard, digest.epoch, digest.tail_bytes);
                    core.offer(digest, bytes)?;
                    metrics.digest_bytes.add(bytes);
                    if let Some(status) = &opts.status {
                        status.shard_seen(shard as usize, epoch, tail, StatusBoard::unix_ms());
                    }
                }
                Ok(Ctrl::Bye { shard }) => core.bye(shard),
                Ok(Ctrl::Gone { shard }) => core.disconnect(shard),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Ok(()),
            }
            while let Some(epoch) = core.seal_next(false)? {
                publish(&core, &epoch, &metrics, opts, &mut on_seal);
                last = Some(epoch);
                pending_since = None;
            }
            if core.head_epoch() > core.sealed() {
                match (opts.straggler, pending_since) {
                    (Some(limit), Some(since)) if since.elapsed() >= limit => {
                        while let Some(epoch) = core.seal_next(true)? {
                            publish(&core, &epoch, &metrics, opts, &mut on_seal);
                            last = Some(epoch);
                        }
                        pending_since = None;
                    }
                    (Some(_), None) => pending_since = Some(Instant::now()),
                    _ => {}
                }
            } else {
                pending_since = None;
            }
            if core.finished() {
                return Ok(());
            }
        }
    })();

    stop.store(true, Ordering::Relaxed);
    TcpStream::connect(local).ok();
    accept.join().ok();
    result?;
    Ok(CoordinatorReport {
        epochs: core.sealed(),
        degraded: core.degraded_seals(),
        refreshes: core.refreshes(),
        escalations: core.escalations(),
        digest_bytes: core.digest_bytes(),
        raw_bytes: core.max_cursor(),
        state_digest: core.state_digest(),
        last,
    })
}

fn publish(
    core: &ClusterCore,
    epoch: &ClusterEpoch,
    metrics: &ClusterMetrics,
    opts: &CoordinatorOptions,
    on_seal: &mut impl FnMut(&ClusterEpoch),
) {
    metrics.epochs.inc();
    if epoch.degraded {
        metrics.degraded.inc();
    }
    metrics.refreshes.store(core.refreshes());
    metrics.escalations.store(core.escalations());
    let status = core.slot_status();
    for (k, gauge) in metrics.shard_lag.iter().enumerate() {
        let folded = status.get(k).map_or(0, |s| s.folded);
        gauge.set(core.sealed().saturating_sub(folded));
    }
    if let Some(board) = &opts.status {
        board.seal_epoch(
            epoch.epoch,
            epoch.events,
            core.max_cursor(),
            epoch.lower,
            epoch.lower,
            epoch.upper,
        );
        board.set_tail_bytes(status.iter().map(|s| s.tail_bytes).max().unwrap_or(0));
        board.set_ready();
    }
    on_seal(epoch);
}

/// Binds `addr` and [`run_coordinator`]s on it — the CLI entry point.
///
/// # Errors
/// Propagates bind failures and merge protocol violations.
pub fn serve_coordinator(
    config: ClusterConfig,
    addr: &str,
    opts: &CoordinatorOptions,
    on_seal: impl FnMut(&ClusterEpoch),
) -> Result<CoordinatorReport, WireError> {
    let listener = TcpListener::bind(addr).map_err(|e| {
        WireError::Io(io::Error::new(
            e.kind(),
            format!("binding coordinator listener on {addr}: {e}"),
        ))
    })?;
    run_coordinator(config, listener, opts, on_seal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{run_worker, WorkerConfig, WorkerOptions};
    use dds_sketch::SketchConfig;
    use dds_stream::{save_events, Event, TimedEvent};

    fn events(n: u32) -> Vec<TimedEvent> {
        (0..n)
            .map(|i| TimedEvent {
                time: u64::from(i),
                event: if i % 9 == 7 {
                    Event::Delete(i.wrapping_mul(31) % 60, (i.wrapping_mul(13) + 1) % 60)
                } else {
                    Event::Insert(i % 60, (i * 11 + 1) % 60)
                },
            })
            .collect()
    }

    /// End-to-end over real sockets, workers as threads: every epoch
    /// seals fresh, counters reconcile, and the report's byte budget
    /// holds.
    #[test]
    fn coordinator_and_threaded_workers_certify_every_epoch() {
        let dir = std::env::temp_dir().join(format!("dds-cluster-net-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.log");
        save_events(&events(2_000), &path).unwrap();

        let config = ClusterConfig {
            shards: 3,
            batch: 100,
            refresh_drift: 0.25,
            sketch: SketchConfig {
                state_bound: 256,
                ..SketchConfig::default()
            },
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handles: Vec<_> = (0..config.shards)
            .map(|shard| {
                let path = path.clone();
                let addr = addr.clone();
                thread::spawn(move || {
                    run_worker(
                        WorkerConfig {
                            shard,
                            shards: config.shards,
                            batch: config.batch,
                            sketch: config.sketch,
                        },
                        &path,
                        &addr,
                        &WorkerOptions {
                            poll: Duration::from_millis(5),
                            idle_exit: Some(Duration::from_millis(300)),
                            ..WorkerOptions::default()
                        },
                    )
                })
            })
            .collect();

        let mut sealed = Vec::new();
        let report = run_coordinator(
            config,
            listener,
            &CoordinatorOptions {
                straggler: Some(Duration::from_secs(5)),
                ..CoordinatorOptions::default()
            },
            |e| sealed.push((e.epoch, e.degraded, e.lower, e.upper)),
        )
        .expect("coordinator");
        for handle in handles {
            handle.join().unwrap().expect("worker");
        }

        assert_eq!(report.epochs, 20, "2000 events / 100 per epoch");
        assert_eq!(sealed.len(), 20);
        assert!(sealed.iter().all(|&(_, degraded, _, _)| !degraded));
        assert!(sealed
            .iter()
            .all(|&(_, _, lower, upper)| lower <= upper * (1.0 + 1e-9)));
        assert!(report.degraded == 0);
        assert!(report.raw_bytes > 0);
        assert!(
            report.digest_bytes < report.raw_bytes,
            "digests ({} B) must undercut raw events ({} B)",
            report.digest_bytes,
            report.raw_bytes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// An identity-mismatched worker is refused at the handshake.
    #[test]
    fn mismatched_worker_is_refused() {
        let dir = std::env::temp_dir().join(format!("dds-cluster-refuse-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.log");
        save_events(&events(50), &path).unwrap();

        let config = ClusterConfig {
            shards: 1,
            batch: 25,
            ..ClusterConfig::default()
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let wrong = thread::spawn({
            let (path, addr) = (path.clone(), addr.clone());
            move || {
                run_worker(
                    WorkerConfig {
                        shard: 0,
                        shards: 1,
                        batch: 99,
                        sketch: config.sketch,
                    },
                    &path,
                    &addr,
                    &WorkerOptions {
                        idle_exit: Some(Duration::from_millis(200)),
                        ..WorkerOptions::default()
                    },
                )
            }
        });
        let right = thread::spawn({
            let (path, addr) = (path.clone(), addr.clone());
            move || {
                // Give the mismatched worker the first slot at the door.
                thread::sleep(Duration::from_millis(150));
                run_worker(
                    WorkerConfig {
                        shard: 0,
                        shards: 1,
                        batch: 25,
                        sketch: config.sketch,
                    },
                    &path,
                    &addr,
                    &WorkerOptions {
                        idle_exit: Some(Duration::from_millis(200)),
                        ..WorkerOptions::default()
                    },
                )
            }
        });
        let report = run_coordinator(config, listener, &CoordinatorOptions::default(), |_| {})
            .expect("coordinator survives the refusal");
        assert!(wrong.join().unwrap().is_err(), "mismatch must surface");
        right.join().unwrap().expect("matching worker runs");
        assert_eq!(report.epochs, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
