//! The worker side of `dds-cluster`: one process, one edge partition.
//!
//! A worker tails the shared event file with
//! [`dds_stream::follow_events`] using the **global** batch size, so
//! every worker sees the same epoch boundaries, but applies only the
//! events [`dds_shard::route_edge`] assigns to its slot — exactly the
//! slice a shard inside a single-process
//! [`dds_shard::ShardedEngine`] would own, applied with the same
//! semantics (ids register even for no-ops, self-loops and duplicate
//! inserts and absent deletes are ignored, an undersampled sketch
//! rebuilds from the partition). Per epoch it ships a [`ShardDigest`]
//! to the coordinator — absolute counters plus the retained-set *delta*
//! since the last shipped epoch — and checkpoints itself through a
//! [`DeltaTracker`] (`DDSD` base + delta frames).
//!
//! # Restart and re-admission
//!
//! On `--resume` the worker restores from its delta chain (rejecting
//! identity mismatches the same way `dds shard --resume` does), then
//! handshakes: its `Hello` carries the checkpoint's epoch `C`, the
//! coordinator answers with the epoch `Y` it holds digests through for
//! this slot, and the worker
//!
//! * **replays silently** to `Y` when `C ≤ Y` (the coordinator already
//!   has those epochs; deterministic replay reproduces the exact
//!   retained set, which becomes the diff baseline at `Y`), or
//! * **rebases** when `C > Y` (the coordinator lost epochs the
//!   checkpoint has — it restarted, or never folded them): one digest
//!   with `rebase = true` carrying the entire retained set replaces the
//!   coordinator's replica wholesale, and shipping continues from
//!   `C + 1`.
//!
//! Either way the worker never re-sends an epoch the coordinator
//! already folded, and the coordinator never sees a delta whose
//! baseline it does not hold.

use std::collections::HashSet;
use std::fmt;
use std::fs;
use std::io;
use std::net::TcpStream;
use std::ops::ControlFlow;
use std::path::{Path, PathBuf};
use std::time::Duration;

use dds_graph::VertexId;
use dds_shard::route_edge;
use dds_sketch::{SketchConfig, SketchEngine};
use dds_stream::delta::{replay_chain_edges, DeltaChain, DeltaFrame, DeltaTracker};
use dds_stream::snapshot::{SnapshotError, SnapshotKind, SnapshotReader, SnapshotWriter};
use dds_stream::{follow_events, Batch, Event, FollowConfig, StreamError};

use crate::wire::{read_frame, write_frame, write_preamble, Frame, Hello, ShardDigest, WireError};

impl From<SnapshotError> for WireError {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Io(e) => WireError::Io(e),
            other => WireError::Protocol(format!("checkpoint: {other}")),
        }
    }
}

fn stream_err(e: StreamError) -> WireError {
    WireError::Protocol(format!("event stream: {e}"))
}

/// Identity of one cluster worker — every field participates in edge
/// routing, sample admission, or epoch numbering, so all of them are
/// checkpoint identity and handshake identity.
#[derive(Clone, Copy, Debug)]
pub struct WorkerConfig {
    /// This worker's shard slot, `0..shards`.
    pub shard: usize,
    /// Total shard count `K`.
    pub shards: usize,
    /// Events per epoch (global batch size — shared by every worker and
    /// the coordinator, or epoch boundaries would disagree).
    pub batch: usize,
    /// Sketch configuration; `seed` doubles as the routing seed and
    /// `state_bound` bounds the retained set.
    pub sketch: SketchConfig,
}

/// Runtime options of [`run_worker`] that are not identity.
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// Poll interval while tailing the event file.
    pub poll: Duration,
    /// Exit after this long with no new events (`None` tails forever).
    pub idle_exit: Option<Duration>,
    /// Delta-checkpoint chain base path (`None` disables checkpoints).
    pub checkpoint: Option<PathBuf>,
    /// Delta frames between base compactions (0 = always full).
    pub compact_every: u32,
    /// Restore from the checkpoint chain before connecting.
    pub resume: bool,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            poll: Duration::from_millis(20),
            idle_exit: Some(Duration::from_secs(2)),
            checkpoint: None,
            compact_every: 8,
            resume: false,
        }
    }
}

/// Per-epoch slice tallies (events routed to this shard, including
/// no-ops).
#[derive(Clone, Copy, Debug, Default)]
pub struct SliceTallies {
    /// Events routed here this epoch.
    pub events: u64,
    /// Applied insertions.
    pub inserts: u64,
    /// Applied deletions.
    pub deletes: u64,
    /// No-ops (self-loops, duplicate inserts, absent deletes).
    pub ignored: u64,
}

/// What one worker run did.
#[derive(Clone, Copy, Debug)]
pub struct WorkerSummary {
    /// Shard slot.
    pub shard: usize,
    /// Final epoch reached.
    pub epoch: u64,
    /// Events routed to this shard over the whole run (replay included).
    pub events: u64,
    /// Digest frames shipped.
    pub digests: u64,
    /// Digest payload bytes shipped.
    pub digest_bytes: u64,
    /// Whether the run opened with a rebase digest.
    pub rebased: bool,
    /// Final event-file byte offset.
    pub cursor: u64,
}

/// One shard partition's in-process state: the authoritative edge set,
/// the sketch over it, and the digest diff baseline. Mirrors the shard
/// semantics of [`dds_shard::ShardedEngine`] exactly — the cluster
/// oracle holds both to the same stream and compares.
#[derive(Debug)]
pub struct WorkerState {
    config: WorkerConfig,
    edges: HashSet<(VertexId, VertexId)>,
    sketch: SketchEngine,
    n: usize,
    epoch: u64,
    last_sent: Option<HashSet<(VertexId, VertexId)>>,
}

/// A decoded worker checkpoint payload, identity not yet checked.
struct WorkerSnapshotParts {
    shard: usize,
    shards: usize,
    seed: u64,
    state_bound: usize,
    batch: usize,
    n: usize,
    epoch: u64,
    level: u32,
    mutations: u64,
    edges: Vec<(VertexId, VertexId)>,
}

impl WorkerSnapshotParts {
    /// Same contract as the sharded engine's resume check: name every
    /// mismatched identity field, never silently re-hash.
    fn check_identity(&self, config: &WorkerConfig) -> Result<(), SnapshotError> {
        let mut wrong = Vec::new();
        if self.shard != config.shard {
            wrong.push(format!(
                "shard slot (checkpoint {}, requested {})",
                self.shard, config.shard
            ));
        }
        if self.shards != config.shards {
            wrong.push(format!(
                "shard count (checkpoint {}, requested {})",
                self.shards, config.shards
            ));
        }
        if self.seed != config.sketch.seed {
            wrong.push(format!(
                "admission seed (checkpoint {:#x}, requested {:#x})",
                self.seed, config.sketch.seed
            ));
        }
        if self.state_bound != config.sketch.state_bound {
            wrong.push(format!(
                "state bound (checkpoint {}, requested {})",
                self.state_bound, config.sketch.state_bound
            ));
        }
        if self.batch != config.batch {
            wrong.push(format!(
                "batch size (checkpoint {}, requested {})",
                self.batch, config.batch
            ));
        }
        if wrong.is_empty() {
            Ok(())
        } else {
            Err(SnapshotError::Format(format!(
                "checkpoint identity mismatch: {} — edge routing, sample admission, and epoch \
                 numbering are derived from these, so resuming would silently re-hash edges onto \
                 different shards; rerun with the checkpoint's flags or start fresh without \
                 --resume",
                wrong.join(", ")
            )))
        }
    }
}

impl WorkerState {
    /// A fresh worker at epoch 0.
    ///
    /// # Panics
    /// Panics unless `0 < shards`, `shard < shards`, and `batch > 0`.
    #[must_use]
    pub fn new(config: WorkerConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.shard < config.shards, "shard slot out of range");
        assert!(config.batch > 0, "batch size must be positive");
        WorkerState {
            config,
            edges: HashSet::new(),
            sketch: SketchEngine::new(config.sketch),
            n: 0,
            epoch: 0,
            last_sent: None,
        }
    }

    /// Applies one **global** batch: filters to this shard's slice with
    /// the routing hash, applies with the exact shard semantics, runs
    /// the undersample-rebuild recovery, and advances the epoch.
    pub fn apply_batch(&mut self, batch: &Batch) -> SliceTallies {
        let mut t = SliceTallies::default();
        let (seed, shards, me) = (
            self.config.sketch.seed,
            self.config.shards,
            self.config.shard,
        );
        for ev in &batch.events {
            match ev.event {
                Event::Insert(u, v) => {
                    if route_edge(seed, u, v, shards) != me {
                        continue;
                    }
                    t.events += 1;
                    // Ids register even for no-ops, like `DynamicGraph`.
                    self.n = self.n.max(u as usize + 1).max(v as usize + 1);
                    if u == v || !self.edges.insert((u, v)) {
                        t.ignored += 1;
                        continue;
                    }
                    self.sketch.insert(u, v);
                    t.inserts += 1;
                }
                Event::Delete(u, v) => {
                    if route_edge(seed, u, v, shards) != me {
                        continue;
                    }
                    t.events += 1;
                    if !self.edges.remove(&(u, v)) {
                        t.ignored += 1;
                        continue;
                    }
                    self.sketch.delete(u, v);
                    t.deletes += 1;
                }
            }
        }
        if self.sketch.is_undersampled() {
            self.sketch.rebuild(self.edges.iter().copied());
        }
        self.epoch += 1;
        t
    }

    /// Makes the current retained set the digest diff baseline without
    /// shipping anything — called when silent replay reaches the epoch
    /// the coordinator already holds.
    pub fn sync_baseline(&mut self) {
        self.last_sent = Some(self.sketch.retained_edges().collect());
    }

    /// Builds this epoch's digest: absolute counters plus the retained
    /// set's delta against the last shipped epoch. With `rebase` (or
    /// with no baseline yet) the digest carries the whole retained set
    /// and the rebase flag. Advances the baseline.
    pub fn digest(
        &mut self,
        t: SliceTallies,
        cursor: u64,
        tail_bytes: u64,
        rebase: bool,
    ) -> ShardDigest {
        let now: HashSet<(VertexId, VertexId)> = self.sketch.retained_edges().collect();
        let (rebase, added, dropped) = match (&self.last_sent, rebase) {
            (Some(last), false) => (
                false,
                now.difference(last).copied().collect(),
                last.difference(&now).copied().collect(),
            ),
            _ => (true, now.iter().copied().collect(), Vec::new()),
        };
        let (out, inc) = self.sketch.degree_trackers();
        let digest = ShardDigest {
            shard: self.config.shard as u32,
            epoch: self.epoch,
            rebase,
            events: t.events,
            inserts: t.inserts,
            deletes: t.deletes,
            ignored: t.ignored,
            n: self.n as u64,
            m: self.sketch.m(),
            out_max: out.max(),
            out_mult: out.max_multiplicity(),
            in_max: inc.max(),
            in_mult: inc.max_multiplicity(),
            level: self.sketch.level(),
            mutations: self.sketch.sample_mutations(),
            cursor,
            tail_bytes,
            added,
            dropped,
        };
        self.last_sent = Some(now);
        digest
    }

    /// Current epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Live edge count of this partition.
    #[must_use]
    pub fn m(&self) -> u64 {
        self.sketch.m()
    }

    /// Iterates the authoritative partition edge set (arbitrary order).
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.edges.iter().copied()
    }

    /// Serializes the worker to a full checkpoint (kind
    /// [`SnapshotKind::ClusterWorker`]): identity, epoch, the partition
    /// edge set in canonical order, and the sketch's level and drift
    /// counter. The retained set is never stored — deterministic
    /// admission rebuilds it. The digest baseline is not stored either:
    /// the handshake reconstructs it (silent replay or rebase).
    #[must_use]
    pub fn snapshot(&self, cursor: u64) -> Vec<u8> {
        self.encode_snapshot(cursor, true)
    }

    /// The checkpoint **meta** payload: [`WorkerState::snapshot`] with
    /// an empty edge list, for `DDSD` delta frames.
    #[must_use]
    pub fn snapshot_meta(&self, cursor: u64) -> Vec<u8> {
        self.encode_snapshot(cursor, false)
    }

    fn encode_snapshot(&self, cursor: u64, with_edges: bool) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SnapshotKind::ClusterWorker, cursor);
        w.put_u32(self.config.shard as u32);
        w.put_u32(self.config.shards as u32);
        w.put_u64(self.config.sketch.seed);
        w.put_u64(self.config.sketch.state_bound as u64);
        w.put_u64(self.config.batch as u64);
        w.put_u64(self.n as u64);
        w.put_u64(self.epoch);
        w.put_u32(self.sketch.level());
        w.put_u64(self.sketch.sample_mutations());
        let mut edges: Vec<(VertexId, VertexId)> = if with_edges {
            self.edges.iter().copied().collect()
        } else {
            Vec::new()
        };
        w.put_edges(&mut edges);
        w.finish()
    }

    fn decode_parts(bytes: &[u8]) -> Result<(WorkerSnapshotParts, u64), SnapshotError> {
        let (mut r, cursor) = SnapshotReader::open(bytes, SnapshotKind::ClusterWorker)?;
        let parts = WorkerSnapshotParts {
            shard: r.take_u32()? as usize,
            shards: r.take_u32()? as usize,
            seed: r.take_u64()?,
            state_bound: r.take_u64()? as usize,
            batch: r.take_u64()? as usize,
            n: r.take_u64()? as usize,
            epoch: r.take_u64()?,
            level: r.take_u32()?,
            mutations: r.take_u64()?,
            edges: r.take_edges()?,
        };
        r.finish()?;
        Ok((parts, cursor))
    }

    fn from_parts(config: WorkerConfig, parts: WorkerSnapshotParts) -> Result<Self, SnapshotError> {
        let mut edges = HashSet::with_capacity(parts.edges.len());
        for &(u, v) in &parts.edges {
            if u as usize >= parts.n || v as usize >= parts.n {
                return Err(SnapshotError::Format(format!(
                    "edge ({u}, {v}) beyond the stored vertex count {}",
                    parts.n
                )));
            }
            if u == v {
                return Err(SnapshotError::Format(format!("self-loop ({u}, {v})")));
            }
            if route_edge(config.sketch.seed, u, v, config.shards) != config.shard {
                return Err(SnapshotError::Format(format!(
                    "edge ({u}, {v}) does not route to shard {}",
                    config.shard
                )));
            }
            if !edges.insert((u, v)) {
                return Err(SnapshotError::Format(format!("duplicate edge ({u}, {v})")));
            }
        }
        let mut sketch =
            SketchEngine::restore_at(config.sketch, parts.level, edges.iter().copied());
        sketch.set_sample_mutations(parts.mutations);
        Ok(WorkerState {
            config,
            edges,
            sketch,
            n: parts.n,
            epoch: parts.epoch,
            last_sent: None,
        })
    }

    /// Reconstructs a worker from full checkpoint bytes under `config`
    /// (identity checked). Returns the worker and the stored cursor.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Format`] on malformed bytes or an
    /// identity mismatch.
    pub fn restore(config: WorkerConfig, bytes: &[u8]) -> Result<(Self, u64), SnapshotError> {
        let (parts, cursor) = Self::decode_parts(bytes)?;
        parts.check_identity(&config)?;
        Ok((Self::from_parts(config, parts)?, cursor))
    }

    /// Reconstructs a worker from a delta checkpoint chain — base plus
    /// consecutive `DDSD` frames — bit-identical to restoring a full
    /// checkpoint taken at the last frame's epoch.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Format`] on malformed bytes, identity
    /// mismatch, or broken chain linkage.
    pub fn restore_chain(
        config: WorkerConfig,
        base: &[u8],
        frames: &[DeltaFrame],
    ) -> Result<(Self, u64), SnapshotError> {
        let (base_parts, base_cursor) = Self::decode_parts(base)?;
        base_parts.check_identity(&config)?;
        let (edges, adopted, _) = replay_chain_edges(
            base_parts.epoch,
            base_cursor,
            base_parts.edges.clone(),
            frames,
        )?;
        if adopted == 0 {
            return Ok((Self::from_parts(config, base_parts)?, base_cursor));
        }
        let (mut parts, cursor) = Self::decode_parts(&frames[adopted - 1].meta)?;
        parts.check_identity(&config)?;
        if !parts.edges.is_empty() {
            return Err(SnapshotError::Format(
                "delta frame meta must carry an empty edge list".to_string(),
            ));
        }
        parts.edges = edges;
        Ok((Self::from_parts(config, parts)?, cursor))
    }

    /// Loads a delta chain from disk and
    /// [`WorkerState::restore_chain`]s from it.
    ///
    /// # Errors
    /// Propagates read and format errors.
    pub fn restore_chain_from(
        config: WorkerConfig,
        chain: &DeltaChain,
    ) -> Result<(Self, u64), SnapshotError> {
        let (base, frames) = chain.load(SnapshotKind::ClusterWorker)?;
        WorkerState::restore_chain(config, &base, &frames)
    }
}

impl fmt::Display for WorkerSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {} epoch {} events {} digests {} ({} B{})",
            self.shard,
            self.epoch,
            self.events,
            self.digests,
            self.digest_bytes,
            if self.rebased { ", rebased" } else { "" }
        )
    }
}

fn tail_bytes(path: &Path, cursor: u64) -> u64 {
    fs::metadata(path)
        .map(|m| m.len().saturating_sub(cursor))
        .unwrap_or(0)
}

/// Runs one worker to completion: optional chain restore, handshake,
/// follow-and-ship loop, `Bye`. Returns when the event stream goes idle
/// past `opts.idle_exit`.
///
/// # Errors
/// Returns [`WireError`] on connection loss, a handshake rejection
/// (identity mismatch at the coordinator), or checkpoint I/O failure.
pub fn run_worker(
    config: WorkerConfig,
    events_path: &Path,
    connect: &str,
    opts: &WorkerOptions,
) -> Result<WorkerSummary, WireError> {
    let chain = opts.checkpoint.as_ref().map(DeltaChain::new);
    let resuming = opts.resume && chain.as_ref().is_some_and(DeltaChain::base_exists);
    let (mut state, start_cursor) = if resuming {
        WorkerState::restore_chain_from(config, chain.as_ref().expect("resuming implies a chain"))?
    } else {
        (WorkerState::new(config), 0)
    };
    let mut tracker = opts
        .checkpoint
        .as_ref()
        .map(|p| DeltaTracker::new(p, SnapshotKind::ClusterWorker, opts.compact_every));
    if resuming {
        if let Some(tracker) = tracker.as_mut() {
            let chain = chain.as_ref().expect("resuming implies a chain");
            let edges: Vec<_> = state.edges().collect();
            tracker.prime(state.epoch(), edges, chain.delta_count());
        }
    }

    let mut stream = TcpStream::connect(connect)?;
    stream.set_nodelay(true).ok();
    write_preamble(&mut stream)?;
    write_frame(
        &mut stream,
        Frame::Hello(Hello {
            shard: config.shard as u32,
            shards: config.shards as u32,
            seed: config.sketch.seed,
            state_bound: config.sketch.state_bound as u64,
            batch: config.batch as u64,
            last_epoch: state.epoch(),
        }),
    )?;
    let resume_from = match read_frame(&mut stream)? {
        Some((Frame::HelloAck { resume_from }, _)) => resume_from,
        Some((other, _)) => {
            return Err(WireError::Protocol(format!(
                "expected HelloAck, got {other:?}"
            )))
        }
        None => {
            return Err(WireError::Protocol(
                "coordinator closed the connection during the handshake \
                 (identity mismatch with the cluster?)"
                    .to_string(),
            ))
        }
    };

    let mut summary = WorkerSummary {
        shard: config.shard,
        epoch: state.epoch(),
        events: 0,
        digests: 0,
        digest_bytes: 0,
        rebased: false,
        cursor: start_cursor,
    };
    if state.epoch() > resume_from {
        // The coordinator lost (or never folded) epochs our checkpoint
        // holds: replace its replica wholesale and ship onward.
        let tail = tail_bytes(events_path, start_cursor);
        let digest = state.digest(SliceTallies::default(), start_cursor, tail, true);
        summary.digest_bytes += write_frame(&mut stream, Frame::Digest(digest))?;
        summary.digests += 1;
        summary.rebased = true;
    } else if state.epoch() == resume_from {
        state.sync_baseline();
    }
    // When state.epoch() < resume_from the epochs up to resume_from
    // replay silently below — the coordinator already folded them.

    let mut failure: Option<WireError> = None;
    let outcome = follow_events(
        events_path,
        FollowConfig {
            batch: config.batch,
            poll: opts.poll,
            idle_exit: opts.idle_exit,
            cursor: start_cursor,
        },
        |batch, cursor| {
            let tallies = state.apply_batch(&batch);
            summary.events += tallies.events;
            let result = (|| -> Result<(), WireError> {
                if state.epoch() == resume_from {
                    state.sync_baseline();
                } else if state.epoch() > resume_from {
                    let tail = tail_bytes(events_path, cursor);
                    let digest = state.digest(tallies, cursor, tail, false);
                    summary.digest_bytes += write_frame(&mut stream, Frame::Digest(digest))?;
                    summary.digests += 1;
                }
                if let Some(tracker) = tracker.as_mut() {
                    let edges: Vec<_> = state.edges().collect();
                    tracker.save(
                        state.epoch(),
                        cursor,
                        edges,
                        || state.snapshot(cursor),
                        || state.snapshot_meta(cursor),
                    )?;
                }
                Ok(())
            })();
            match result {
                Ok(()) => ControlFlow::Continue(()),
                Err(e) => {
                    failure = Some(e);
                    ControlFlow::Break(())
                }
            }
        },
    )
    .map_err(stream_err)?;
    if let Some(e) = failure {
        return Err(e);
    }
    summary.epoch = state.epoch();
    summary.cursor = outcome.cursor;
    write_frame(
        &mut stream,
        Frame::Bye {
            shard: config.shard as u32,
        },
    )?;
    // Give the coordinator a chance to drain before the socket drops.
    stream.shutdown(std::net::Shutdown::Write).or_else(|e| {
        if e.kind() == io::ErrorKind::NotConnected {
            Ok(())
        } else {
            Err(e)
        }
    })?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dds_stream::TimedEvent;

    fn config() -> WorkerConfig {
        WorkerConfig {
            shard: 1,
            shards: 3,
            batch: 8,
            sketch: SketchConfig {
                state_bound: 64,
                ..SketchConfig::default()
            },
        }
    }

    fn batch_of(range: std::ops::Range<u32>) -> Batch {
        Batch::from_events(
            range
                .map(|i| TimedEvent {
                    time: u64::from(i),
                    event: Event::Insert(i % 40, (i * 7 + 1) % 40),
                })
                .collect(),
        )
    }

    #[test]
    fn apply_filters_to_the_routed_slice() {
        let cfg = config();
        let mut w = WorkerState::new(cfg);
        let batch = batch_of(0..200);
        let t = w.apply_batch(&batch);
        let expect: u64 = batch
            .events
            .iter()
            .map(|ev| match ev.event {
                Event::Insert(u, v) | Event::Delete(u, v) => {
                    u64::from(route_edge(cfg.sketch.seed, u, v, cfg.shards) == cfg.shard)
                }
            })
            .sum();
        assert_eq!(t.events, expect);
        assert_eq!(t.inserts + t.ignored, t.events);
        assert_eq!(w.epoch(), 1);
        assert!(w.edges().all(|(u, v)| {
            route_edge(cfg.sketch.seed, u, v, cfg.shards) == cfg.shard && u != v
        }));
    }

    #[test]
    fn digests_delta_against_the_last_shipped_epoch() {
        let mut w = WorkerState::new(config());
        let t = w.apply_batch(&batch_of(0..100));
        let first = w.digest(t, 10, 0, false);
        assert!(first.rebase, "no baseline yet: full set with rebase flag");
        assert!(first.dropped.is_empty());
        let t = w.apply_batch(&batch_of(100..140));
        let second = w.digest(t, 20, 0, false);
        assert!(!second.rebase);
        // Replaying the deltas over the first set yields the current set.
        let mut replica: HashSet<(VertexId, VertexId)> = first.added.iter().copied().collect();
        for e in &second.dropped {
            assert!(replica.remove(e));
        }
        for e in &second.added {
            assert!(replica.insert(*e));
        }
        let now: HashSet<(VertexId, VertexId)> = w.sketch.retained_edges().collect();
        assert_eq!(replica, now);
        assert_eq!(second.m, w.m());
    }

    #[test]
    fn checkpoint_round_trips_and_rejects_identity_mismatch() {
        let cfg = config();
        let mut w = WorkerState::new(cfg);
        w.apply_batch(&batch_of(0..300));
        let snap = w.snapshot(77);
        let (restored, cursor) = WorkerState::restore(cfg, &snap).expect("restore");
        assert_eq!(cursor, 77);
        assert_eq!(restored.snapshot(77), snap, "round trip is bit-identical");
        let mut wrong = cfg;
        wrong.batch = 16;
        let err = WorkerState::restore(wrong, &snap).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("batch size (checkpoint 8, requested 16)"),
            "{msg}"
        );
        assert!(msg.contains("re-hash"), "{msg}");
    }

    #[test]
    fn chain_restore_matches_full_restore() {
        let dir = std::env::temp_dir().join(format!("dds-cluster-worker-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("worker.ckpt");
        let cfg = config();
        let mut w = WorkerState::new(cfg);
        let mut tracker = DeltaTracker::new(&base, SnapshotKind::ClusterWorker, 3);
        for step in 0..5u32 {
            w.apply_batch(&batch_of(step * 60..(step + 1) * 60));
            let cursor = u64::from(step) * 100;
            let edges: Vec<_> = w.edges().collect();
            tracker
                .save(
                    w.epoch(),
                    cursor,
                    edges,
                    || w.snapshot(cursor),
                    || w.snapshot_meta(cursor),
                )
                .unwrap();
        }
        let chain = DeltaChain::new(&base);
        let (from_chain, cursor) = WorkerState::restore_chain_from(cfg, &chain).expect("chain");
        assert_eq!(cursor, 400);
        assert_eq!(from_chain.snapshot(400), w.snapshot(400));
        std::fs::remove_dir_all(&dir).ok();
    }
}
