//! Cross-process sharded DDS ingestion: `K` worker processes ingest
//! disjoint edge partitions and ship compact per-epoch **digests** over
//! TCP to a coordinator that merges them into a globally certified
//! density bracket — the multi-host form of the single-process
//! [`dds_shard::ShardedEngine`].
//!
//! # Why digests suffice
//!
//! The single-process engine certifies from two merges, both exact:
//! counters **sum** (the edge partition is disjoint) and retained
//! samples **union** at the maximum level (shared-seed nested
//! admission). Neither merge needs the partitions themselves — only the
//! counter summaries and the retained-set *changes*. So a worker ships,
//! per epoch, a [`ShardDigest`]: live `m`, degree maxima with their
//! count-of-counts multiplicity, subsampling level, drift counter, lag
//! health, and the few edges its retained sample admitted or dropped
//! since the last shipped epoch. The coordinator replays those deltas
//! into per-slot replicas and certifies with the same machinery —
//! typically a few percent of the raw event bytes (experiment E20 and
//! the `cluster-smoke` CI gate measure it).
//!
//! # The moving parts
//!
//! * [`wire`] — DDSC v1: versioned preamble, length-prefixed frames,
//!   canonical varint digest encoding.
//! * [`worker`] — [`WorkerState`] (one partition's edge set + sketch,
//!   mirroring the in-process shard semantics exactly) and
//!   [`run_worker`] (tail the event file, ship digests, checkpoint
//!   through a `DDSD` delta chain).
//! * [`coord`] — [`ClusterCore`], the deterministic merge: fold
//!   digests, seal epochs (fresh or straggler-degraded with sound
//!   inflated bounds), run merged refreshes over the replicas.
//! * [`net`] — the coordinator's TCP runtime and `dds_cluster_*`
//!   metrics.
//!
//! # Failure model
//!
//! Workers checkpoint through incremental `DDSD` snapshot chains
//! ([`dds_stream::delta`]) and re-admit through a digest-cursor
//! handshake: `Hello` carries the checkpoint epoch, the ack carries the
//! epoch the coordinator holds digests through, and the worker either
//! replays silently up to it or ships one **rebase** digest replacing
//! its replica wholesale. Epochs sealed during the outage carry a
//! certified-but-wider bracket with the stale shard named; the
//! kill/restore drill (`dds-bench cluster-smoke`, experiment E20)
//! asserts every epoch stays certified and the restored run's merged
//! state is bit-identical to an uninterrupted one.

#![warn(missing_docs)]

pub mod coord;
pub mod net;
pub mod wire;
pub mod worker;

pub use coord::{ClusterConfig, ClusterCore, ClusterEpoch, SlotStatus};
pub use net::{
    run_coordinator, serve_coordinator, ClusterMetrics, CoordinatorOptions, CoordinatorReport,
};
pub use wire::{Frame, Hello, ShardDigest, WireError, WIRE_MAGIC, WIRE_VERSION};
pub use worker::{
    run_worker, SliceTallies, WorkerConfig, WorkerOptions, WorkerState, WorkerSummary,
};
