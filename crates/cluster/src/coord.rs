//! The coordinator's deterministic merge core: digest folding, epoch
//! sealing, straggler degradation, and merged certification.
//!
//! [`ClusterCore`] is a pure state machine — no sockets, no clock. The
//! TCP runtime ([`crate::net::run_coordinator`]) feeds it frames and
//! decides *when* to force a degraded seal; everything the core computes
//! is a deterministic function of the digest sequence, which is what
//! lets the cluster oracle replay the same digests into an in-process
//! core and demand byte-identical sealed epochs.
//!
//! # Folding and sealing
//!
//! Per slot the core keeps a **replica** of the worker's retained
//! sample (reconstructed from the digest deltas), the worker's absolute
//! counters, and `folded` — the epoch the replica corresponds to.
//! Digests queue per slot and fold under one discipline:
//!
//! * at **seal** `e`, every slot with `folded == e − 1` and a queued
//!   digest for `e` folds it — those slots are *fresh* for the epoch;
//! * a digest for an epoch `≤ sealed` arriving late (a shard catching
//!   up after an outage) folds immediately — the epoch it belongs to
//!   was already sealed degraded, and folding now un-stales the slot
//!   for future seals;
//! * a **rebase** digest first drains the slot's queue (those deltas
//!   apply to the pre-rebase replica), then replaces the replica
//!   wholesale.
//!
//! A seal is **certified** either way: fresh slots contribute exact
//! counters; a stale slot whose replica sits at epoch `f ≠ e`
//! contributes its counters inflated by `|e − f| · B` (B = the global
//! batch size) on `m` and on each degree maximum — sound in both
//! directions because an epoch changes any shard's live edge count and
//! any vertex degree by at most `B`. The lower bound only counts
//! witness edges on **fresh** replicas (a stale replica may still hold
//! edges deleted from the graph), so degraded epochs report a wider but
//! still certified bracket, with the stale slots named.
//!
//! # Merged refreshes
//!
//! The refresh trigger mirrors [`dds_shard::ShardedEngine`]'s pooled
//! drift policy over the digest-reported mutation counters. A refresh
//! rebuilds one [`SketchEngine`] per fresh replica
//! ([`SketchEngine::restore_at`] — deterministic admission makes the
//! replica self-describing) and merges them with the exact PR 5
//! machinery ([`SketchEngine::merged`]: counters sum, samples union at
//! the max level, state bound re-enforced), then runs the usual
//! two-tier solve. Two documented deviations from the single-process
//! engine: the fresh witness replaces the incumbent whenever the solve
//! produces one (the coordinator has no full graph to run
//! `denser_pair` on), and the lower bound is the witness's density on
//! the merged **sample**, not on the full graph — both keep the bracket
//! sound, just wider.

use std::collections::{BTreeMap, HashSet};
use std::mem;

use dds_graph::{Pair, VertexId};
use dds_num::Density;
use dds_sketch::{SketchConfig, SketchEngine};

use crate::wire::{put_varint, Hello, ShardDigest, WireError};

/// Relative inflation applied to the floating-point upper bound so
/// rounding can never flip the certificate (same discipline as every
/// other engine in the workspace).
const SAFETY: f64 = 1e-9;

/// Pooled retained sets smaller than this still wait for a few
/// mutations before refreshing (mirrors the shard policy).
const DRIFT_FLOOR: usize = 32;

/// Configuration of a [`ClusterCore`] (and, via identity checks, of
/// every worker allowed to join it).
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of shard slots `K`.
    pub shards: usize,
    /// Global events-per-epoch batch size `B` — the straggler
    /// inflation unit.
    pub batch: usize,
    /// Fraction of the pooled replica set that must churn before a
    /// merged refresh fires.
    pub refresh_drift: f64,
    /// Sketch configuration shared with the workers (`seed` and
    /// `state_bound` are handshake identity).
    pub sketch: SketchConfig,
}

impl Default for ClusterConfig {
    /// 4 shards, 400-event epochs, the standard drift (0.25), default
    /// sketch.
    fn default() -> Self {
        ClusterConfig {
            shards: 4,
            batch: 400,
            refresh_drift: 0.25,
            sketch: SketchConfig::default(),
        }
    }
}

/// One shard slot's merged view.
#[derive(Debug)]
struct Slot {
    /// Replica of the worker's retained sample at epoch `folded`.
    replica: HashSet<(VertexId, VertexId)>,
    /// Epoch the replica and counters correspond to.
    folded: u64,
    /// Digests queued for epochs beyond the sealed frontier.
    pending: BTreeMap<u64, ShardDigest>,
    /// Live witness edges inside the replica.
    hits: u64,
    /// Mutation counter at the last merged refresh.
    baseline: u64,
    // Absolute counters from the last folded digest.
    n: u64,
    m: u64,
    out_max: u64,
    out_mult: u64,
    in_max: u64,
    in_mult: u64,
    level: u32,
    mutations: u64,
    cursor: u64,
    tail_bytes: u64,
    connected: bool,
    byed: bool,
}

impl Slot {
    fn new() -> Self {
        Slot {
            replica: HashSet::new(),
            folded: 0,
            pending: BTreeMap::new(),
            hits: 0,
            baseline: 0,
            n: 0,
            m: 0,
            out_max: 0,
            out_mult: 0,
            in_max: 0,
            in_mult: 0,
            level: 0,
            mutations: 0,
            cursor: 0,
            tail_bytes: 0,
            connected: false,
            byed: false,
        }
    }

    /// Highest epoch this slot has digests through: `folded`, extended
    /// by the (consecutive) pending queue.
    fn acked(&self) -> u64 {
        self.pending
            .last_key_value()
            .map_or(self.folded, |(&e, _)| e.max(self.folded))
    }
}

/// One slot's externally visible status (admin plane, lag gauges).
#[derive(Clone, Copy, Debug)]
pub struct SlotStatus {
    /// Epoch the slot's folded state corresponds to.
    pub folded: u64,
    /// Highest epoch the slot has shipped digests through.
    pub acked: u64,
    /// Event-file byte offset of the last folded digest.
    pub cursor: u64,
    /// The worker's reported ingestion lag in bytes.
    pub tail_bytes: u64,
    /// Replica size (retained edges mirrored here).
    pub retained: usize,
    /// Whether a connection currently claims this slot.
    pub connected: bool,
    /// Whether the worker signed off cleanly.
    pub byed: bool,
}

/// One sealed, certified cluster epoch.
#[derive(Clone, Debug)]
pub struct ClusterEpoch {
    /// 1-based global epoch.
    pub epoch: u64,
    /// Vertex-id space size (max over slots).
    pub n: u64,
    /// The live-edge count the upper bound used: the exact sum over
    /// fresh slots, plus the straggler inflation of stale ones.
    pub m: u64,
    /// Events folded at this seal (fresh slots only).
    pub events: u64,
    /// How many slots were fresh.
    pub fresh: u32,
    /// Slots that contributed inflated (stale) counters.
    pub stale: Vec<u32>,
    /// Whether the seal was forced by the straggler policy.
    pub degraded: bool,
    /// Whether this epoch ran a merged refresh.
    pub refreshed: bool,
    /// Merged sample level at the last refresh.
    pub merged_level: u32,
    /// Replica edges mirrored across all slots.
    pub retained: u64,
    /// The certified lower bound as exact arithmetic.
    pub density: Density,
    /// `density` as `f64`.
    pub lower: f64,
    /// Certified upper bound from the (possibly inflated) summed
    /// counters.
    pub upper: f64,
    /// The incumbent witness pair.
    pub witness: Option<Pair>,
}

impl ClusterEpoch {
    /// Proven approximation factor (`∞` when the lower bound is zero
    /// and the upper is not).
    #[must_use]
    pub fn certified_factor(&self) -> f64 {
        if self.lower > 0.0 {
            self.upper / self.lower
        } else if self.upper > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }

    /// Canonical byte encoding of everything this epoch certifies —
    /// what the cluster oracle compares between a TCP coordinator and
    /// an in-process one.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_varint(&mut out, self.epoch);
        put_varint(&mut out, self.n);
        put_varint(&mut out, self.m);
        put_varint(&mut out, self.events);
        put_varint(&mut out, u64::from(self.fresh));
        put_varint(&mut out, self.stale.len() as u64);
        for &k in &self.stale {
            put_varint(&mut out, u64::from(k));
        }
        out.push(u8::from(self.degraded));
        out.push(u8::from(self.refreshed));
        put_varint(&mut out, u64::from(self.merged_level));
        put_varint(&mut out, self.retained);
        put_varint(&mut out, self.lower.to_bits());
        put_varint(&mut out, self.upper.to_bits());
        match &self.witness {
            None => out.push(0),
            Some(pair) => {
                out.push(1);
                for side in [pair.s(), pair.t()] {
                    put_varint(&mut out, side.len() as u64);
                    for &v in side {
                        put_varint(&mut out, u64::from(v));
                    }
                }
            }
        }
        out
    }
}

fn protocol(msg: impl Into<String>) -> WireError {
    WireError::Protocol(msg.into())
}

/// The deterministic digest-merging state machine. See the module docs
/// for the folding/sealing discipline.
#[derive(Debug)]
pub struct ClusterCore {
    config: ClusterConfig,
    slots: Vec<Slot>,
    sealed: u64,
    witness: Option<Pair>,
    in_s: Vec<bool>,
    in_t: Vec<bool>,
    escalate_next: bool,
    merged_level: u32,
    refreshes: u64,
    escalations: u64,
    digest_bytes: u64,
    degraded_seals: u64,
}

impl ClusterCore {
    /// A fresh core with `config.shards` empty slots.
    ///
    /// # Panics
    /// Panics unless `shards` and `batch` are positive.
    #[must_use]
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard slot");
        assert!(config.batch > 0, "batch size must be positive");
        ClusterCore {
            config,
            slots: (0..config.shards).map(|_| Slot::new()).collect(),
            sealed: 0,
            witness: None,
            in_s: Vec::new(),
            in_t: Vec::new(),
            escalate_next: false,
            merged_level: 0,
            refreshes: 0,
            escalations: 0,
            digest_bytes: 0,
            degraded_seals: 0,
        }
    }

    /// Admits (or re-admits) a worker: every identity field must match
    /// the cluster's, and the answer is the epoch the slot already has
    /// digests through — the worker resumes shipping *after* it.
    ///
    /// # Errors
    /// Names every mismatched identity field (the cluster-side twin of
    /// the checkpoint resume check).
    pub fn hello(&mut self, hello: &Hello) -> Result<u64, WireError> {
        let mut wrong = Vec::new();
        if hello.shards as usize != self.config.shards {
            wrong.push(format!(
                "shard count (cluster {}, worker {})",
                self.config.shards, hello.shards
            ));
        }
        if hello.seed != self.config.sketch.seed {
            wrong.push(format!(
                "admission seed (cluster {:#x}, worker {:#x})",
                self.config.sketch.seed, hello.seed
            ));
        }
        if hello.state_bound as usize != self.config.sketch.state_bound {
            wrong.push(format!(
                "state bound (cluster {}, worker {})",
                self.config.sketch.state_bound, hello.state_bound
            ));
        }
        if hello.batch as usize != self.config.batch {
            wrong.push(format!(
                "batch size (cluster {}, worker {})",
                self.config.batch, hello.batch
            ));
        }
        if hello.shard >= hello.shards {
            wrong.push(format!(
                "shard slot {} out of range 0..{}",
                hello.shard, hello.shards
            ));
        }
        if !wrong.is_empty() {
            return Err(protocol(format!(
                "worker identity mismatch: {} — digests from a differently-keyed worker would \
                 merge unsoundly, refusing the connection",
                wrong.join(", ")
            )));
        }
        let slot = &mut self.slots[hello.shard as usize];
        slot.connected = true;
        slot.byed = false;
        Ok(slot.acked())
    }

    /// Accepts one digest (`payload_bytes` feeds the traffic counter):
    /// rebases fold immediately (draining the queue first), late
    /// catch-up digests fold immediately, in-order future digests
    /// queue for their seal.
    ///
    /// # Errors
    /// Rejects out-of-order epochs and deltas that desync the replica.
    pub fn offer(&mut self, digest: ShardDigest, payload_bytes: u64) -> Result<(), WireError> {
        let k = digest.shard as usize;
        if k >= self.slots.len() {
            return Err(protocol(format!("digest from unknown shard {k}")));
        }
        self.digest_bytes += payload_bytes;
        if digest.rebase {
            // Queued deltas apply to the pre-rebase replica; fold them
            // (ahead of the seal frontier — sound, the slot just reads
            // as stale-ahead with inflated counters until seals catch
            // up), then replace wholesale.
            let queued: Vec<ShardDigest> = mem::take(&mut self.slots[k].pending)
                .into_values()
                .collect();
            for d in queued {
                self.fold(k, &d)?;
            }
            if digest.epoch <= self.slots[k].folded {
                return Err(protocol(format!(
                    "rebase for epoch {} at or behind the folded epoch {}",
                    digest.epoch, self.slots[k].folded
                )));
            }
            return self.fold(k, &digest);
        }
        let slot = &mut self.slots[k];
        let expected = slot.acked() + 1;
        if digest.epoch != expected {
            return Err(protocol(format!(
                "shard {k} digest for epoch {} out of order (expected {expected})",
                digest.epoch
            )));
        }
        if digest.epoch <= self.sealed && slot.pending.is_empty() {
            // Late catch-up after a degraded window.
            self.fold(k, &digest)
        } else {
            slot.pending.insert(digest.epoch, digest);
            Ok(())
        }
    }

    /// Applies one digest to its slot: replays the sample delta onto
    /// the replica (validating it), overwrites the absolute counters,
    /// and maintains the witness hit count incrementally.
    fn fold(&mut self, k: usize, d: &ShardDigest) -> Result<(), WireError> {
        let (in_s, in_t) = (&self.in_s, &self.in_t);
        let in_witness = |u: VertexId, v: VertexId| {
            in_s.get(u as usize).copied().unwrap_or(false)
                && in_t.get(v as usize).copied().unwrap_or(false)
        };
        let slot = &mut self.slots[k];
        if d.rebase {
            if !d.dropped.is_empty() {
                return Err(protocol("rebase digest with a non-empty dropped list"));
            }
            slot.replica.clear();
            slot.hits = 0;
        }
        for &(u, v) in &d.dropped {
            if !slot.replica.remove(&(u, v)) {
                return Err(protocol(format!(
                    "shard {k} epoch {} drops edge ({u}, {v}) the replica does not hold — \
                     sample desync",
                    d.epoch
                )));
            }
            if in_witness(u, v) {
                slot.hits -= 1;
            }
        }
        for &(u, v) in &d.added {
            if !slot.replica.insert((u, v)) {
                return Err(protocol(format!(
                    "shard {k} epoch {} adds edge ({u}, {v}) the replica already holds — \
                     sample desync",
                    d.epoch
                )));
            }
            if in_witness(u, v) {
                slot.hits += 1;
            }
        }
        slot.n = d.n;
        slot.m = d.m;
        slot.out_max = d.out_max;
        slot.out_mult = d.out_mult;
        slot.in_max = d.in_max;
        slot.in_mult = d.in_mult;
        slot.level = d.level;
        slot.mutations = d.mutations;
        slot.cursor = d.cursor;
        slot.tail_bytes = d.tail_bytes;
        slot.folded = d.epoch;
        Ok(())
    }

    /// Seals epoch `sealed + 1` if possible: always when every slot is
    /// fresh for it, and under `force` (the straggler policy) as soon
    /// as *any* slot has digests past the frontier — stale slots then
    /// contribute inflated counters. Returns `None` when there is
    /// nothing to seal.
    ///
    /// # Errors
    /// Propagates replica desync detected while folding.
    pub fn seal_next(&mut self, force: bool) -> Result<Option<ClusterEpoch>, WireError> {
        let e = self.sealed + 1;
        // A slot covers epoch `e` when it queued a digest for it, or
        // already folded to (or past) it — a rebase can land a slot
        // ahead of the frontier, where it reads as stale with inflated
        // counters until the seals catch up.
        let ready = self.slots.iter().all(|s| s.acked() >= e);
        if !ready && (!force || self.head_epoch() < e) {
            return Ok(None);
        }
        let mut events = 0u64;
        for k in 0..self.slots.len() {
            if self.slots[k].folded == e - 1 {
                if let Some(d) = self.slots[k].pending.remove(&e) {
                    events += d.events;
                    self.fold(k, &d)?;
                }
            }
        }
        let batch = self.config.batch as u64;
        let (mut m, mut out, mut inc, mut n) = (0u64, 0u64, 0u64, 0u64);
        let mut stale = Vec::new();
        for (k, slot) in self.slots.iter().enumerate() {
            let gap = slot.folded.abs_diff(e);
            if gap > 0 {
                stale.push(k as u32);
            }
            // One epoch moves a shard's edge count and any vertex
            // degree by at most B events, in either direction.
            let inflation = gap.saturating_mul(batch);
            m += slot.m + inflation;
            out += slot.out_max + inflation;
            inc += slot.in_max + inflation;
            n = n.max(slot.n);
        }
        let refreshed = self.maybe_refresh(e);
        let fresh_hits: u64 = self
            .slots
            .iter()
            .filter(|s| s.folded == e)
            .map(|s| s.hits)
            .sum();
        let density = match &self.witness {
            Some(pair) if !pair.is_empty() => {
                Density::new(fresh_hits, pair.s().len() as u64, pair.t().len() as u64)
            }
            _ => Density::ZERO,
        };
        let upper = if m == 0 {
            0.0
        } else {
            let sqrt_m = (m as f64).sqrt();
            let degree = ((out as f64) * (inc as f64)).sqrt();
            sqrt_m.min(degree) * (1.0 + SAFETY)
        };
        let degraded = !stale.is_empty();
        if degraded {
            self.degraded_seals += 1;
        }
        self.sealed = e;
        Ok(Some(ClusterEpoch {
            epoch: e,
            n,
            m,
            events,
            fresh: (self.slots.len() - stale.len()) as u32,
            stale,
            degraded,
            refreshed,
            merged_level: self.merged_level,
            retained: self.slots.iter().map(|s| s.replica.len() as u64).sum(),
            density,
            lower: density.to_f64(),
            upper,
            witness: self.witness.clone(),
        }))
    }

    /// The pooled drift policy over digest-reported mutation counters,
    /// then a merged refresh of the fresh replicas when it fires.
    fn maybe_refresh(&mut self, e: u64) -> bool {
        let retained: usize = self.slots.iter().map(|s| s.replica.len()).sum();
        if retained == 0 {
            return false;
        }
        let fresh_hits: u64 = self
            .slots
            .iter()
            .filter(|s| s.folded == e)
            .map(|s| s.hits)
            .sum();
        let dead = self.witness.is_none() || fresh_hits == 0;
        if !dead {
            // Workers report cumulative mutations; a restart resets
            // them, which the saturating diff reads as "no drift yet".
            let drift: u64 = self
                .slots
                .iter()
                .map(|s| s.mutations.saturating_sub(s.baseline))
                .sum();
            if (drift as f64) < self.config.refresh_drift * (retained.max(DRIFT_FLOOR) as f64) {
                return false;
            }
        }
        let fresh: Vec<&Slot> = self
            .slots
            .iter()
            .filter(|s| s.folded == e && !s.replica.is_empty())
            .collect();
        if fresh.is_empty() {
            return false;
        }
        self.refreshes += 1;
        let engines: Vec<SketchEngine> = fresh
            .iter()
            .map(|s| {
                SketchEngine::restore_at(self.config.sketch, s.level, s.replica.iter().copied())
            })
            .collect();
        let refs: Vec<&SketchEngine> = engines.iter().collect();
        let mut merged = SketchEngine::merged(self.config.sketch, &refs);
        if mem::take(&mut self.escalate_next) {
            merged.arm_escalation();
        }
        let stats = merged.force_refresh();
        if stats.is_some() {
            self.escalations += 1;
        }
        // The merged engine's cold-start detector always sees a dead
        // incumbent; only honour it when ours is dead too.
        self.escalate_next = merged.escalation_armed() && dead;
        self.merged_level = merged.level();
        if let Some(pair) = merged.witness_pair().cloned().filter(|p| !p.is_empty()) {
            self.adopt_witness(pair);
        }
        for slot in &mut self.slots {
            slot.baseline = slot.mutations;
        }
        true
    }

    /// Adopts a fresh witness: rebuild the bitmaps and recount every
    /// slot's replica against it.
    fn adopt_witness(&mut self, pair: Pair) {
        let n = self.slots.iter().map(|s| s.n).max().unwrap_or(0) as usize;
        self.in_s = vec![false; n];
        self.in_t = vec![false; n];
        for &u in pair.s() {
            if (u as usize) < n {
                self.in_s[u as usize] = true;
            }
        }
        for &v in pair.t() {
            if (v as usize) < n {
                self.in_t[v as usize] = true;
            }
        }
        for slot in &mut self.slots {
            slot.hits = slot
                .replica
                .iter()
                .filter(|&&(u, v)| {
                    self.in_s.get(u as usize).copied().unwrap_or(false)
                        && self.in_t.get(v as usize).copied().unwrap_or(false)
                })
                .count() as u64;
        }
        self.witness = Some(pair);
    }

    /// A worker signed off cleanly.
    pub fn bye(&mut self, shard: u32) {
        if let Some(slot) = self.slots.get_mut(shard as usize) {
            slot.byed = true;
            slot.connected = false;
        }
    }

    /// A worker's connection dropped without a `Bye` (it may be back —
    /// the failure drill's kill/restore path re-admits through
    /// [`ClusterCore::hello`]).
    pub fn disconnect(&mut self, shard: u32) {
        if let Some(slot) = self.slots.get_mut(shard as usize) {
            slot.connected = false;
        }
    }

    /// Highest epoch any slot has digests through.
    #[must_use]
    pub fn head_epoch(&self) -> u64 {
        self.slots.iter().map(Slot::acked).max().unwrap_or(0)
    }

    /// Epochs sealed so far.
    #[must_use]
    pub fn sealed(&self) -> u64 {
        self.sealed
    }

    /// Whether every worker signed off and every shipped epoch sealed.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.slots.iter().all(|s| s.byed) && self.head_epoch() == self.sealed
    }

    /// Digest payload bytes accepted so far.
    #[must_use]
    pub fn digest_bytes(&self) -> u64 {
        self.digest_bytes
    }

    /// Merged refreshes run so far.
    #[must_use]
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Refreshes that escalated to an exact-on-sketch solve.
    #[must_use]
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Seals forced by the straggler policy.
    #[must_use]
    pub fn degraded_seals(&self) -> u64 {
        self.degraded_seals
    }

    /// Highest event-file byte offset any digest reported — the raw
    /// event bytes the cluster has collectively ingested, and the
    /// denominator of the digest-traffic budget.
    #[must_use]
    pub fn max_cursor(&self) -> u64 {
        self.slots.iter().map(|s| s.cursor).max().unwrap_or(0)
    }

    /// Per-slot status in slot order (admin plane, gauges).
    #[must_use]
    pub fn slot_status(&self) -> Vec<SlotStatus> {
        self.slots
            .iter()
            .map(|s| SlotStatus {
                folded: s.folded,
                acked: s.acked(),
                cursor: s.cursor,
                tail_bytes: s.tail_bytes,
                retained: s.replica.len(),
                connected: s.connected,
                byed: s.byed,
            })
            .collect()
    }

    /// The cluster configuration.
    #[must_use]
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// Canonical bytes of the **worker-determined merged state**: per
    /// slot the folded epoch, absolute counters, and the sorted
    /// replica. This is what the failure drill demands be bit-identical
    /// between an interrupted-and-restored run and an uninterrupted one
    /// (the witness and drift baselines are coordinator-side solve
    /// artifacts and may legitimately differ through a degraded
    /// window, so they are excluded).
    #[must_use]
    pub fn state_digest(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_varint(&mut out, self.slots.len() as u64);
        for slot in &self.slots {
            put_varint(&mut out, slot.folded);
            put_varint(&mut out, slot.n);
            put_varint(&mut out, slot.m);
            put_varint(&mut out, slot.out_max);
            put_varint(&mut out, slot.out_mult);
            put_varint(&mut out, slot.in_max);
            put_varint(&mut out, slot.in_mult);
            put_varint(&mut out, u64::from(slot.level));
            put_varint(&mut out, slot.mutations);
            let mut edges: Vec<_> = slot.replica.iter().copied().collect();
            edges.sort_unstable();
            put_varint(&mut out, edges.len() as u64);
            for (u, v) in edges {
                put_varint(&mut out, u64::from(u));
                put_varint(&mut out, u64::from(v));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Frame;
    use crate::worker::{WorkerConfig, WorkerState};
    use dds_stream::{Batch, Event, TimedEvent};

    fn cluster_config(shards: usize, batch: usize) -> ClusterConfig {
        ClusterConfig {
            shards,
            batch,
            refresh_drift: 0.25,
            sketch: SketchConfig {
                state_bound: 128,
                ..SketchConfig::default()
            },
        }
    }

    fn workers(config: ClusterConfig) -> Vec<WorkerState> {
        (0..config.shards)
            .map(|shard| {
                WorkerState::new(WorkerConfig {
                    shard,
                    shards: config.shards,
                    batch: config.batch,
                    sketch: config.sketch,
                })
            })
            .collect()
    }

    fn batch_at(step: u32, batch: usize) -> Batch {
        Batch::from_events(
            (0..batch as u32)
                .map(|i| {
                    let x = step * batch as u32 + i;
                    TimedEvent {
                        time: u64::from(x),
                        event: if x % 7 == 3 {
                            Event::Delete(x.wrapping_mul(31) % 50, (x.wrapping_mul(17) + 1) % 50)
                        } else {
                            Event::Insert(x % 50, (x * 13 + 1) % 50)
                        },
                    }
                })
                .collect(),
        )
    }

    fn digest_of(w: &mut WorkerState, batch: &Batch) -> (ShardDigest, u64) {
        let t = w.apply_batch(batch);
        let d = w.digest(t, w.epoch() * 100, 0, false);
        let bytes = Frame::Digest(d.clone()).encode().len() as u64;
        (d, bytes)
    }

    #[test]
    fn fresh_seals_reconcile_counters_with_the_workers() {
        let cfg = cluster_config(3, 32);
        let mut core = ClusterCore::new(cfg);
        let mut ws = workers(cfg);
        for step in 0..20 {
            let batch = batch_at(step, cfg.batch);
            let mut m_sum = 0;
            for w in ws.iter_mut() {
                let (d, bytes) = digest_of(w, &batch);
                m_sum += d.m;
                core.offer(d, bytes).expect("in-order digest");
            }
            let epoch = core
                .seal_next(false)
                .expect("no desync")
                .expect("all slots fresh");
            assert_eq!(epoch.epoch, u64::from(step) + 1);
            assert!(!epoch.degraded);
            assert_eq!(epoch.stale, Vec::<u32>::new());
            assert_eq!(epoch.m, m_sum, "fresh seal sums exact counters");
            assert!(epoch.lower <= epoch.upper * (1.0 + 1e-9));
            assert!(core.seal_next(true).unwrap().is_none(), "nothing queued");
        }
        assert!(core.refreshes() > 0, "drift policy fired at least once");
        assert!(core.sealed() == 20 && core.head_epoch() == 20);
    }

    #[test]
    fn straggler_seals_degrade_soundly_and_catch_up() {
        let cfg = cluster_config(2, 16);
        let mut core = ClusterCore::new(cfg);
        let mut ws = workers(cfg);
        let b = cfg.batch as u64;
        // Both shards ship epoch 1; only shard 0 ships epochs 2 and 3.
        let mut held = Vec::new();
        let mut m_at = [Vec::new(), Vec::new()];
        for step in 0..3 {
            let batch = batch_at(step, cfg.batch);
            for (k, w) in ws.iter_mut().enumerate() {
                let (d, bytes) = digest_of(w, &batch);
                m_at[k].push(d.m);
                if step >= 1 && k == 1 {
                    held.push((d, bytes));
                } else {
                    core.offer(d, bytes).unwrap();
                }
            }
        }
        assert!(core.seal_next(false).unwrap().is_some(), "epoch 1 fresh");
        assert!(core.seal_next(false).unwrap().is_none(), "epoch 2 waits");
        let e2 = core.seal_next(true).unwrap().expect("forced");
        assert!(e2.degraded && e2.stale == vec![1]);
        // Stale inflation: shard 1 contributes its epoch-1 m plus 1·B.
        assert_eq!(e2.m, m_at[0][1] + m_at[1][0] + b);
        let e3 = core.seal_next(true).unwrap().expect("forced");
        assert!(e3.degraded && e3.stale == vec![1]);
        assert_eq!(e3.m, m_at[0][2] + m_at[1][0] + 2 * b);
        // Late digests fold immediately and un-stale the slot.
        for (d, bytes) in held {
            core.offer(d, bytes).unwrap();
        }
        let status = core.slot_status();
        assert_eq!(status[1].folded, 3, "catch-up folded to the frontier");
        let batch = batch_at(3, cfg.batch);
        for w in ws.iter_mut() {
            let (d, bytes) = digest_of(w, &batch);
            core.offer(d, bytes).unwrap();
        }
        let e4 = core.seal_next(false).unwrap().expect("fresh again");
        assert!(!e4.degraded);
        let m_now: u64 = ws.iter().map(WorkerState::m).sum();
        assert_eq!(e4.m, m_now, "exact counters after recovery");
    }

    #[test]
    fn rebase_replaces_the_replica_and_reads_stale_ahead() {
        let cfg = cluster_config(2, 16);
        let mut core = ClusterCore::new(cfg);
        let mut ws = workers(cfg);
        for step in 0..2 {
            let batch = batch_at(step, cfg.batch);
            for w in ws.iter_mut() {
                let (d, bytes) = digest_of(w, &batch);
                core.offer(d, bytes).unwrap();
            }
            core.seal_next(false).unwrap().expect("fresh");
        }
        // Shard 1 runs ahead offline to epoch 5, then rebases.
        for step in 2..5 {
            ws[1].apply_batch(&batch_at(step, cfg.batch));
        }
        let rebase = ws[1].digest(Default::default(), 500, 0, true);
        assert!(rebase.rebase);
        core.offer(rebase, 0).unwrap();
        assert_eq!(core.slot_status()[1].folded, 5);
        // Seals 3..5 are degraded (slot 1 stale-ahead), 0 still fresh.
        for _ in 0..2 {
            let (d, bytes) = digest_of(&mut ws[0], &batch_at(core.sealed() as u32, cfg.batch));
            core.offer(d, bytes).unwrap();
            let e = core.seal_next(true).unwrap().expect("forced");
            assert!(e.degraded && e.stale == vec![1]);
        }
        assert_eq!(core.sealed(), 4);
    }

    #[test]
    fn hello_checks_identity_and_offers_resume_points() {
        let cfg = cluster_config(2, 16);
        let mut core = ClusterCore::new(cfg);
        let good = Hello {
            shard: 0,
            shards: 2,
            seed: cfg.sketch.seed,
            state_bound: cfg.sketch.state_bound as u64,
            batch: 16,
            last_epoch: 0,
        };
        assert_eq!(core.hello(&good).unwrap(), 0);
        let err = core
            .hello(&Hello {
                seed: 1,
                batch: 99,
                ..good
            })
            .unwrap_err()
            .to_string();
        assert!(err.contains("admission seed"), "{err}");
        assert!(err.contains("batch size (cluster 16, worker 99)"), "{err}");
        // After two shipped epochs the resume point moves.
        let mut w = workers(cfg).remove(0);
        for step in 0..2 {
            let (d, bytes) = digest_of(&mut w, &batch_at(step, cfg.batch));
            core.offer(d, bytes).unwrap();
        }
        assert_eq!(core.hello(&good).unwrap(), 2, "folded + queued digests");
    }

    #[test]
    fn desynced_deltas_are_rejected() {
        let cfg = cluster_config(1, 8);
        let mut core = ClusterCore::new(cfg);
        let bogus = ShardDigest {
            shard: 0,
            epoch: 1,
            dropped: vec![(1, 2)],
            ..Default::default()
        };
        core.offer(bogus, 0).unwrap();
        let err = core.seal_next(false).unwrap_err().to_string();
        assert!(err.contains("sample desync"), "{err}");
        // Out-of-order epochs are refused at offer time.
        let mut core = ClusterCore::new(cfg);
        let err = core
            .offer(
                ShardDigest {
                    shard: 0,
                    epoch: 3,
                    ..Default::default()
                },
                0,
            )
            .unwrap_err()
            .to_string();
        assert!(err.contains("out of order"), "{err}");
    }
}
