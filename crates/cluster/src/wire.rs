//! DDSC v1 — the length-prefixed digest wire format between cluster
//! workers and the coordinator.
//!
//! A connection opens with a fixed preamble (`"DDSC"` magic + `u32` LE
//! version, mirroring the DDSS snapshot header discipline: unknown
//! versions are rejected up front, never skipped over). After the
//! preamble the stream is a sequence of *frames*: a `u32` LE payload
//! length followed by the payload, whose first byte is the frame kind.
//! All integers inside payloads are unsigned LEB128 varints — digests
//! are dominated by small per-epoch deltas, so varints are what keep
//! digest traffic a few percent of the raw event bytes.
//!
//! Frame kinds:
//!
//! | kind | frame      | direction            |
//! |------|------------|----------------------|
//! | 1    | `Hello`    | worker → coordinator |
//! | 2    | `HelloAck` | coordinator → worker |
//! | 3    | `Digest`   | worker → coordinator |
//! | 4    | `Bye`      | worker → coordinator |
//!
//! Encoding is **canonical**: a [`ShardDigest`]'s edge lists are sorted
//! before writing, so the same logical digest always serialises to the
//! same bytes — this is what makes the digest-traffic byte counters
//! deterministic across runs and lets the cluster oracle compare a TCP
//! coordinator against an in-process one byte for byte.

use std::fmt;
use std::io::{self, Read, Write};

use dds_graph::VertexId;

/// Connection preamble magic.
pub const WIRE_MAGIC: [u8; 4] = *b"DDSC";
/// Wire format version; bump on any layout change.
pub const WIRE_VERSION: u32 = 1;
/// Upper bound on a single frame's payload, as a corruption backstop —
/// far above any real digest (a full-sample rebase at the default state
/// bound is a few tens of kilobytes).
pub const MAX_FRAME_BYTES: u32 = 1 << 26;

/// Errors crossing the cluster wire (and the worker/coordinator logic
/// built on it).
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/file I/O failed.
    Io(io::Error),
    /// The peer violated the protocol (bad magic, unknown version or
    /// kind, malformed payload, or a digest the merge logic rejects).
    Protocol(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "cluster wire i/o: {e}"),
            WireError::Protocol(msg) => write!(f, "cluster protocol: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

fn protocol(msg: impl Into<String>) -> WireError {
    WireError::Protocol(msg.into())
}

/// Appends `value` as an unsigned LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// A cursor over a frame payload that decodes varints and enforces
/// exact consumption.
pub struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// A reader over `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        PayloadReader { bytes, pos: 0 }
    }

    /// Decodes one unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| protocol("truncated varint"))?;
            self.pos += 1;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(protocol("varint overflows u64"));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Decodes a varint that must fit `u32`.
    pub fn varint_u32(&mut self) -> Result<u32, WireError> {
        u32::try_from(self.varint()?).map_err(|_| protocol("varint exceeds u32"))
    }

    /// Rejects any unconsumed trailing bytes.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(protocol(format!(
                "{} trailing payload bytes",
                self.bytes.len() - self.pos
            )))
        }
    }
}

fn put_edges(out: &mut Vec<u8>, edges: &[(VertexId, VertexId)]) {
    put_varint(out, edges.len() as u64);
    for &(u, v) in edges {
        put_varint(out, u64::from(u));
        put_varint(out, u64::from(v));
    }
}

fn take_edges(r: &mut PayloadReader<'_>) -> Result<Vec<(VertexId, VertexId)>, WireError> {
    let count = r.varint()?;
    let count = usize::try_from(count).map_err(|_| protocol("edge count exceeds usize"))?;
    if count > MAX_FRAME_BYTES as usize {
        return Err(protocol("edge list longer than the frame could hold"));
    }
    let mut edges = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        edges.push((r.varint_u32()?, r.varint_u32()?));
    }
    Ok(edges)
}

/// A worker's opening frame: its identity (slot, topology, admission
/// seed, state bound, batch size) plus the epoch its checkpoint replayed
/// to, so the coordinator can compute where digest shipping resumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// This worker's shard slot, `0..shards`.
    pub shard: u32,
    /// Total shard count `K` the worker was launched with.
    pub shards: u32,
    /// Edge-routing / sample-admission seed.
    pub seed: u64,
    /// Per-shard sketch state bound.
    pub state_bound: u64,
    /// Events per epoch (global batch size `B`).
    pub batch: u64,
    /// The epoch the worker's local state currently sits at (0 when
    /// starting fresh).
    pub last_epoch: u64,
}

/// One shard's per-epoch digest: exact counter summary, sample delta
/// since the last shipped epoch, and lag health.
///
/// Counters are *absolute* (live `m`, degree maxima with their
/// count-of-counts multiplicity, cumulative sample mutations) — the
/// coordinator overwrites, never accumulates them, which is what makes
/// a rebase digest (`rebase = true`, `added` = the full retained set)
/// indistinguishable from a fresh fold. Only the edge lists are deltas.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardDigest {
    /// Shard slot this digest is from.
    pub shard: u32,
    /// Global epoch this digest seals on the worker.
    pub epoch: u64,
    /// When set, `added` is the worker's **entire** retained set and the
    /// coordinator replaces its replica wholesale (restart recovery).
    pub rebase: bool,
    /// Events routed to this shard during the epoch.
    pub events: u64,
    /// Applied insertions during the epoch.
    pub inserts: u64,
    /// Applied deletions during the epoch.
    pub deletes: u64,
    /// Ignored events (self-loops, duplicate inserts, absent deletes).
    pub ignored: u64,
    /// Vertex-id space size observed by this shard.
    pub n: u64,
    /// Live edge count of this shard's partition.
    pub m: u64,
    /// Maximum out-degree within the partition.
    pub out_max: u64,
    /// How many vertices sit at `out_max` (count-of-counts summary).
    pub out_mult: u64,
    /// Maximum in-degree within the partition.
    pub in_max: u64,
    /// How many vertices sit at `in_max`.
    pub in_mult: u64,
    /// Subsampling level of the worker's retained set.
    pub level: u32,
    /// Cumulative retained-set mutations (drift input; resets only when
    /// the worker restarts, so the coordinator diffs against a baseline).
    pub mutations: u64,
    /// Byte offset into the event file just past this epoch.
    pub cursor: u64,
    /// Bytes between `cursor` and the end of the event file at send
    /// time (ingestion lag).
    pub tail_bytes: u64,
    /// Edges admitted into the retained set since the last shipped
    /// epoch (or the whole set when `rebase`).
    pub added: Vec<(VertexId, VertexId)>,
    /// Edges dropped from the retained set since the last shipped epoch
    /// (must be empty when `rebase`).
    pub dropped: Vec<(VertexId, VertexId)>,
}

/// One parsed frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Worker introduction (expects a [`Frame::HelloAck`] back).
    Hello(Hello),
    /// Coordinator's answer: the epoch digests should resume *after*.
    HelloAck {
        /// Worker ships digests for epochs `> resume_from`.
        resume_from: u64,
    },
    /// One per-epoch digest.
    Digest(ShardDigest),
    /// Clean end-of-stream from a worker.
    Bye {
        /// Shard slot signing off.
        shard: u32,
    },
}

const KIND_HELLO: u8 = 1;
const KIND_HELLO_ACK: u8 = 2;
const KIND_DIGEST: u8 = 3;
const KIND_BYE: u8 = 4;

impl Frame {
    /// Serialises the frame payload (kind byte + body, no length
    /// prefix). Digest edge lists are sorted first: encoding is
    /// canonical.
    #[must_use]
    pub fn encode(mut self) -> Vec<u8> {
        let mut out = Vec::new();
        match &mut self {
            Frame::Hello(h) => {
                out.push(KIND_HELLO);
                put_varint(&mut out, u64::from(h.shard));
                put_varint(&mut out, u64::from(h.shards));
                put_varint(&mut out, h.seed);
                put_varint(&mut out, h.state_bound);
                put_varint(&mut out, h.batch);
                put_varint(&mut out, h.last_epoch);
            }
            Frame::HelloAck { resume_from } => {
                out.push(KIND_HELLO_ACK);
                put_varint(&mut out, *resume_from);
            }
            Frame::Digest(d) => {
                d.added.sort_unstable();
                d.dropped.sort_unstable();
                out.push(KIND_DIGEST);
                put_varint(&mut out, u64::from(d.shard));
                put_varint(&mut out, d.epoch);
                out.push(u8::from(d.rebase));
                put_varint(&mut out, d.events);
                put_varint(&mut out, d.inserts);
                put_varint(&mut out, d.deletes);
                put_varint(&mut out, d.ignored);
                put_varint(&mut out, d.n);
                put_varint(&mut out, d.m);
                put_varint(&mut out, d.out_max);
                put_varint(&mut out, d.out_mult);
                put_varint(&mut out, d.in_max);
                put_varint(&mut out, d.in_mult);
                put_varint(&mut out, u64::from(d.level));
                put_varint(&mut out, d.mutations);
                put_varint(&mut out, d.cursor);
                put_varint(&mut out, d.tail_bytes);
                put_edges(&mut out, &d.added);
                put_edges(&mut out, &d.dropped);
            }
            Frame::Bye { shard } => {
                out.push(KIND_BYE);
                put_varint(&mut out, u64::from(*shard));
            }
        }
        out
    }

    /// Parses one frame payload, rejecting unknown kinds and trailing
    /// bytes.
    pub fn decode(payload: &[u8]) -> Result<Frame, WireError> {
        let (&kind, body) = payload
            .split_first()
            .ok_or_else(|| protocol("empty frame"))?;
        let mut r = PayloadReader::new(body);
        let frame = match kind {
            KIND_HELLO => Frame::Hello(Hello {
                shard: r.varint_u32()?,
                shards: r.varint_u32()?,
                seed: r.varint()?,
                state_bound: r.varint()?,
                batch: r.varint()?,
                last_epoch: r.varint()?,
            }),
            KIND_HELLO_ACK => Frame::HelloAck {
                resume_from: r.varint()?,
            },
            KIND_DIGEST => {
                let shard = r.varint_u32()?;
                let epoch = r.varint()?;
                let rebase = match r.varint()? {
                    0 => false,
                    1 => true,
                    other => return Err(protocol(format!("bad rebase flag {other}"))),
                };
                Frame::Digest(ShardDigest {
                    shard,
                    epoch,
                    rebase,
                    events: r.varint()?,
                    inserts: r.varint()?,
                    deletes: r.varint()?,
                    ignored: r.varint()?,
                    n: r.varint()?,
                    m: r.varint()?,
                    out_max: r.varint()?,
                    out_mult: r.varint()?,
                    in_max: r.varint()?,
                    in_mult: r.varint()?,
                    level: r.varint_u32()?,
                    mutations: r.varint()?,
                    cursor: r.varint()?,
                    tail_bytes: r.varint()?,
                    added: take_edges(&mut r)?,
                    dropped: take_edges(&mut r)?,
                })
            }
            KIND_BYE => Frame::Bye {
                shard: r.varint_u32()?,
            },
            other => return Err(protocol(format!("unknown frame kind {other}"))),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Writes the connection preamble (worker side, immediately after
/// connecting).
pub fn write_preamble(w: &mut impl Write) -> Result<(), WireError> {
    w.write_all(&WIRE_MAGIC)?;
    w.write_all(&WIRE_VERSION.to_le_bytes())?;
    Ok(())
}

/// Reads and validates the connection preamble (coordinator side).
pub fn read_preamble(r: &mut impl Read) -> Result<(), WireError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != WIRE_MAGIC {
        return Err(protocol("bad preamble magic (not a DDSC connection)"));
    }
    let mut version = [0u8; 4];
    r.read_exact(&mut version)?;
    let version = u32::from_le_bytes(version);
    if version != WIRE_VERSION {
        return Err(protocol(format!(
            "unsupported DDSC version {version} (this side speaks {WIRE_VERSION})"
        )));
    }
    Ok(())
}

/// Length-prefixes and writes one frame; returns the payload byte count
/// (the digest-traffic unit the 5 % budget is measured in).
pub fn write_frame(w: &mut impl Write, frame: Frame) -> Result<u64, WireError> {
    let payload = frame.encode();
    let len = u32::try_from(payload.len()).map_err(|_| protocol("frame too large"))?;
    if len > MAX_FRAME_BYTES {
        return Err(protocol("frame exceeds MAX_FRAME_BYTES"));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(u64::from(len))
}

/// Reads one length-prefixed frame. `Ok(None)` is a clean EOF at a
/// frame boundary; EOF mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(Frame, u64)>, WireError> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_BYTES {
        return Err(protocol("frame exceeds MAX_FRAME_BYTES"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((Frame::decode(&payload)?, u64::from(len))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest() -> ShardDigest {
        ShardDigest {
            shard: 2,
            epoch: 17,
            rebase: false,
            events: 100,
            inserts: 80,
            deletes: 15,
            ignored: 5,
            n: 4096,
            m: 70_000,
            out_max: 19,
            out_mult: 3,
            in_max: 22,
            in_mult: 1,
            level: 4,
            mutations: 9_001,
            cursor: 123_456,
            tail_bytes: 789,
            added: vec![(5, 9), (1, 2), (5, 3)],
            dropped: vec![(7, 7), (0, 1)],
        }
    }

    #[test]
    fn frames_round_trip_and_encode_canonically() {
        let frames = vec![
            Frame::Hello(Hello {
                shard: 1,
                shards: 4,
                seed: 0x5EED_CA5E,
                state_bound: 4096,
                batch: 400,
                last_epoch: 12,
            }),
            Frame::HelloAck { resume_from: 12 },
            Frame::Digest(digest()),
            Frame::Bye { shard: 3 },
        ];
        for frame in frames {
            let bytes = frame.clone().encode();
            let back = Frame::decode(&bytes).expect("round trip");
            if let (Frame::Digest(orig), Frame::Digest(dec)) = (&frame, &back) {
                // Edge lists come back sorted regardless of input order.
                let mut sorted = orig.clone();
                sorted.added.sort_unstable();
                sorted.dropped.sort_unstable();
                assert_eq!(dec, &sorted);
                // Canonical: shuffled input, identical bytes.
                let mut shuffled = orig.clone();
                shuffled.added.reverse();
                shuffled.dropped.reverse();
                assert_eq!(Frame::Digest(shuffled).encode(), bytes);
            } else {
                assert_eq!(back, frame);
            }
        }
    }

    #[test]
    fn stream_round_trips_through_a_buffer() {
        let mut buf = Vec::new();
        write_preamble(&mut buf).unwrap();
        let d1 = write_frame(&mut buf, Frame::Digest(digest())).unwrap();
        let d2 = write_frame(&mut buf, Frame::Bye { shard: 2 }).unwrap();
        assert!(d1 > d2);
        let mut r = &buf[..];
        read_preamble(&mut r).unwrap();
        let (f1, n1) = read_frame(&mut r).unwrap().expect("digest frame");
        assert!(matches!(f1, Frame::Digest(_)));
        assert_eq!(n1, d1);
        let (f2, _) = read_frame(&mut r).unwrap().expect("bye frame");
        assert_eq!(f2, Frame::Bye { shard: 2 });
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        // Unknown kind.
        assert!(matches!(Frame::decode(&[99]), Err(WireError::Protocol(_))));
        // Trailing bytes.
        let mut bytes = (Frame::Bye { shard: 1 }).encode();
        bytes.push(0);
        assert!(matches!(Frame::decode(&bytes), Err(WireError::Protocol(_))));
        // Truncated digest.
        let digest_bytes = Frame::Digest(digest()).encode();
        assert!(Frame::decode(&digest_bytes[..digest_bytes.len() - 1]).is_err());
        // Bad preamble.
        let mut r: &[u8] = b"DDSX\x01\x00\x00\x00";
        assert!(read_preamble(&mut r).is_err());
        let mut r: &[u8] = b"DDSC\x09\x00\x00\x00";
        assert!(read_preamble(&mut r).is_err());
    }

    #[test]
    fn varints_cover_the_u64_range() {
        for value in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, value);
            let mut r = PayloadReader::new(&buf);
            assert_eq!(r.varint().unwrap(), value);
            r.finish().unwrap();
        }
        // Overflow: 11-byte varint.
        let mut r = PayloadReader::new(&[0xff; 11]);
        assert!(r.varint().is_err());
    }
}
